// Modified Dijkstra maze routing over the colored grid (paper Section III-B,
// inherited from the framework of [20]).
//
// Search states are (metal layer, grid point, incoming travel direction);
// carrying the direction lets the expansion
//
//  * hard-exclude forbidden turns (including turns against the net's own
//    existing arms when branching off the routed tree),
//  * charge non-preferred turns,
//  * strongly discourage non-preferred-direction segments ("restricted
//    detailed routing": the perpendicular direction is expensive, never
//    impossible).
//
// Via moves reset the direction state (a via landing pad starts a fresh
// wire).  During the TPL-violation-removal phase, via locations whose
// occupation would create an FVP are hard-blocked (Algorithm 2, Fig. 10).
//
// The search is A* (admissible Manhattan-distance heuristic) restricted to
// an inflated bounding box of sources and target; on failure it retries
// unwindowed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_maps.hpp"
#include "core/routed_net.hpp"
#include "grid/routing_grid.hpp"
#include "grid/turns.hpp"
#include "util/stats.hpp"
#include "via/via_db.hpp"

namespace sadp::core {

class MazeRouter {
 public:
  MazeRouter(const grid::RoutingGrid& grid, const grid::TurnRules& rules,
             const CostMaps& costs, const via::ViaDb& vias,
             const FlowOptions& options);

  /// Penalty multiplier for presently-occupied vertices; the negotiation
  /// engine escalates this between rounds.
  void set_present_factor(double factor) noexcept { present_factor_ = factor; }

  /// Enable the hard FVP block on via placements (Algorithm 2 phase).
  void set_fvp_blocking(bool enabled) noexcept { fvp_blocking_ = enabled; }

  /// Route one connection: from `sources` (the metal points of the net's
  /// connected tree on routable layers) to the metal-2 point above
  /// `target_pin`.  On success the path is appended to `net` (grid databases
  /// NOT updated — the caller applies the net afterwards) and the touched
  /// routable-layer points are appended to `*new_points`.  Returns false
  /// when no path exists.
  ///
  /// Invariant: the net being routed must not be applied to the grid (the
  /// router always rips before rerouting).  The vertex-cost "others" term
  /// can then read the incremental occupancy counts directly instead of
  /// walking occupant spans to subtract the net's own entries.
  [[nodiscard]] bool route_connection(RoutedNet& net,
                                      const std::vector<MetalKey>& sources,
                                      grid::Point target_pin,
                                      std::vector<MetalKey>* new_points);

  /// Search-effort statistics (nodes popped in the last call).
  [[nodiscard]] std::size_t last_pops() const noexcept { return last_pops_; }

  /// Cumulative search-effort counters across the router's lifetime.
  struct SearchStats {
    std::uint64_t pops = 0;         ///< heap pops over all searches
    std::uint64_t relaxations = 0;  ///< successful distance improvements
    std::uint64_t searches = 0;     ///< search() invocations
    std::uint64_t heap_reused = 0;  ///< searches needing no open-list regrowth
  };
  [[nodiscard]] const SearchStats& stats() const noexcept { return stats_; }

  /// Distribution of per-search pop counts (one sample per search()); the
  /// p50/p95/max land in RoutingReport/StageMetrics so a handful of
  /// pathological searches is visible next to the cumulative totals.
  [[nodiscard]] const util::Histogram& search_pops() const noexcept {
    return pops_hist_;
  }

  /// Fold another router's cumulative counters and pop distribution into
  /// this one (partition merge: region-world searches count toward the same
  /// job totals a serial run would report).
  void absorb_stats(const MazeRouter& other) noexcept {
    stats_.pops += other.stats_.pops;
    stats_.relaxations += other.stats_.relaxations;
    stats_.searches += other.stats_.searches;
    stats_.heap_reused += other.stats_.heap_reused;
    pops_hist_.merge(other.pops_hist_);
  }

 private:
  struct OpenEntry {
    double f;  ///< g + admissible heuristic
    double g;
    std::int64_t state;

    friend bool operator<(const OpenEntry& a, const OpenEntry& b) {
      return a.f > b.f;  // min-heap under std::push_heap/pop_heap
    }
  };

  struct Window {
    int lo_x, lo_y, hi_x, hi_y;
    [[nodiscard]] bool contains(grid::Point p) const noexcept {
      return p.x >= lo_x && p.x <= hi_x && p.y >= lo_y && p.y <= hi_y;
    }
  };

  [[nodiscard]] bool search(RoutedNet& net, const std::vector<MetalKey>& sources,
                            grid::Point target_pin, const Window& window,
                            std::vector<MetalKey>* new_points);

  // State encoding: ((layer - 2) * num_points + point_index) * 5 + dir.
  [[nodiscard]] std::int64_t state_id(int layer, grid::Point p, int dir) const {
    return (static_cast<std::int64_t>(layer - 2) * num_points_ + grid_.index(p)) *
               5 +
           dir;
  }

  [[nodiscard]] double metal_vertex_cost(int layer, grid::Point p,
                                         grid::NetId net) const;
  [[nodiscard]] double via_vertex_cost(int via_layer, grid::Point p,
                                       grid::NetId net) const;

  const grid::RoutingGrid& grid_;
  const grid::TurnRules& rules_;
  const CostMaps& costs_;
  const via::ViaDb& vias_;
  const FlowOptions& options_;

  std::int64_t num_points_;
  int num_routable_layers_;

  double present_factor_ = 1.0;
  bool fvp_blocking_ = false;
  std::size_t last_pops_ = 0;
  SearchStats stats_;
  util::Histogram pops_hist_;

  // Per-state scratch, epoch-stamped to avoid clearing between calls.
  std::vector<double> dist_;
  std::vector<std::int64_t> parent_;
  std::vector<std::uint32_t> epoch_;
  std::uint32_t current_epoch_ = 0;

  // Reusable open list: cleared (capacity kept) per search instead of
  // constructing a fresh std::priority_queue, so steady-state searches are
  // allocation-free.  Identical heap algorithm (push_heap/pop_heap), so the
  // pop order — including tiebreaks — matches the priority_queue it
  // replaces bit for bit.
  std::vector<OpenEntry> open_;
};

}  // namespace sadp::core
