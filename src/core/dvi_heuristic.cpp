#include "core/dvi_heuristic.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/timer.hpp"
#include "via/coloring.hpp"
#include "via/decomp_graph.hpp"

namespace sadp::core {

namespace {

/// Identity of one feasible DVIC.
struct CandidateRef {
  int via = 0;
  int k = 0;  ///< index into problem.feasible[via]
};

struct HeapEntry {
  double dp;
  int via;
  int k;
  friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
    if (a.dp != b.dp) return a.dp > b.dp;  // min-heap on DP
    if (a.via != b.via) return a.via > b.via;
    return a.k > b.k;
  }
};

[[nodiscard]] std::int64_t loc_key(int layer, grid::Point p) {
  return (static_cast<std::int64_t>(layer) << 48) ^
         (static_cast<std::int64_t>(static_cast<std::uint32_t>(p.x)) << 24) ^
         static_cast<std::int64_t>(static_cast<std::uint32_t>(p.y));
}

class Heuristic {
 public:
  Heuristic(const DviProblem& problem, via::ViaDb db, const DviParams& params,
            const DviHeuristicOptions& options)
      : problem_(problem), db_(std::move(db)), params_(params), options_(options) {
    // Spatial index of feasible DVICs per (layer, location).
    for (int i = 0; i < problem_.num_vias(); ++i) {
      const int layer = problem_.vias[static_cast<std::size_t>(i)].via_layer;
      const auto& cands = problem_.feasible[static_cast<std::size_t>(i)];
      for (int k = 0; k < static_cast<int>(cands.size()); ++k) {
        at_loc_[loc_key(layer, cands[static_cast<std::size_t>(k)])].push_back(
            CandidateRef{i, k});
      }
    }
    protected_.assign(static_cast<std::size_t>(problem_.num_vias()), false);
  }

  DviHeuristicOutput run() {
    util::Timer timer;
    DviHeuristicOutput out;
    out.result.inserted.assign(static_cast<std::size_t>(problem_.num_vias()), -1);
    out.inserted_at.assign(static_cast<std::size_t>(problem_.num_vias()), {});
    out.original_color.assign(static_cast<std::size_t>(problem_.num_vias()),
                              via::kUncolored);
    out.redundant_color.assign(static_cast<std::size_t>(problem_.num_vias()),
                               via::kUncolored);

    // TPL pre-coloring on the existing vias.
    std::vector<std::pair<grid::Point, int>> located;
    located.reserve(static_cast<std::size_t>(problem_.num_vias()));
    for (const auto& via : problem_.vias) located.push_back({via.at, via.via_layer});
    const via::DecompGraph pre_graph = via::DecompGraph::from_located(located);
    via::ColoringResult pre = via::welsh_powell(pre_graph);
    const int pre_uncolored = static_cast<int>(pre.uncolored.size());
    for (int i = 0; i < problem_.num_vias(); ++i) {
      out.original_color[static_cast<std::size_t>(i)] =
          pre.color[static_cast<std::size_t>(i)];
    }

    // Fixed features so far (originals, then kept redundant vias) and their
    // colors; repair passes extend both.
    std::vector<std::pair<grid::Point, int>> fixed = located;
    std::vector<int> fixed_colors = pre.color;

    const int passes = 1 + std::max(options_.repair_passes, 0);
    for (int pass = 0; pass < passes; ++pass) {
      // One priority-queue insertion sweep over the unprotected vias
      // (Algorithm 3's main loop; in pass 0 this is exactly the paper).
      std::priority_queue<HeapEntry> pq;
      for (int i = 0; i < problem_.num_vias(); ++i) {
        if (protected_[static_cast<std::size_t>(i)]) continue;
        const auto& cands = problem_.feasible[static_cast<std::size_t>(i)];
        for (int k = 0; k < static_cast<int>(cands.size()); ++k) {
          pq.push(HeapEntry{compute_dp(i, k), i, k});
        }
      }
      std::vector<int> pass_vias;
      while (!pq.empty()) {
        const HeapEntry top = pq.top();
        pq.pop();
        if (!valid(top.via, top.k)) continue;
        const double dp = compute_dp(top.via, top.k);
        if (dp != top.dp) {
          pq.push(HeapEntry{dp, top.via, top.k});
          continue;
        }
        insert(top.via, top.k, out);
        pass_vias.push_back(top.via);
      }
      if (pass_vias.empty()) break;

      // TPL coloring of this pass's insertions with all earlier colors
      // fixed; un-insert (and unprotect) any uncolorable redundancy.
      std::vector<std::pair<grid::Point, int>> all = fixed;
      std::vector<int> vertex_of(pass_vias.size());
      for (std::size_t k = 0; k < pass_vias.size(); ++k) {
        const int i = pass_vias[k];
        vertex_of[k] = static_cast<int>(all.size());
        all.push_back({out.inserted_at[static_cast<std::size_t>(i)],
                       problem_.vias[static_cast<std::size_t>(i)].via_layer});
      }
      const via::DecompGraph graph = via::DecompGraph::from_located(all);
      std::vector<int> seed(all.size(), via::kUncolored);
      std::copy(fixed_colors.begin(), fixed_colors.end(), seed.begin());
      via::ColoringResult coloring = via::welsh_powell_extend(graph, std::move(seed));

      for (std::size_t k = 0; k < pass_vias.size(); ++k) {
        const int i = pass_vias[k];
        const int color = coloring.color[static_cast<std::size_t>(vertex_of[k])];
        if (color == via::kUncolored) {
          // Un-insert the redundant via (and let a repair pass retry).
          db_.remove(problem_.vias[static_cast<std::size_t>(i)].via_layer,
                     out.inserted_at[static_cast<std::size_t>(i)]);
          out.result.inserted[static_cast<std::size_t>(i)] = -1;
          protected_[static_cast<std::size_t>(i)] = false;
        } else {
          out.redundant_color[static_cast<std::size_t>(i)] = color;
          fixed.push_back({out.inserted_at[static_cast<std::size_t>(i)],
                           problem_.vias[static_cast<std::size_t>(i)].via_layer});
          fixed_colors.push_back(color);
        }
      }
    }

    out.result.dead_vias = 0;
    for (int i = 0; i < problem_.num_vias(); ++i) {
      if (out.result.inserted[static_cast<std::size_t>(i)] < 0) {
        ++out.result.dead_vias;
      }
    }
    // Residual uncolorable vias: only ever the pre-coloring leftovers (the
    // router hands us TPL-decomposable layers, so this is normally 0).
    out.result.uncolorable = pre_uncolored;
    out.result.seconds = timer.seconds();
    return out;
  }

 private:
  [[nodiscard]] grid::Point loc(int via, int k) const {
    return problem_.feasible[static_cast<std::size_t>(via)][static_cast<std::size_t>(k)];
  }
  [[nodiscard]] int layer(int via) const {
    return problem_.vias[static_cast<std::size_t>(via)].via_layer;
  }

  /// Validity test of Algorithm 3 (three conditions, all must be false):
  /// a redundant via at a conflicting DVIC (same location), the via already
  /// protected, or the insertion would create an FVP.
  [[nodiscard]] bool valid(int via, int k) {
    if (protected_[static_cast<std::size_t>(via)]) return false;
    const grid::Point p = loc(via, k);
    if (db_.has(layer(via), p)) return false;  // conflicting DVIC used
    return !db_.would_create_fvp(layer(via), p);
  }

  /// The DVI penalty DP (Section III-E).
  [[nodiscard]] double compute_dp(int via, int k) {
    const grid::Point p = loc(via, k);
    const int v_layer = layer(via);

    int conflicting = 0;
    const auto it = at_loc_.find(loc_key(v_layer, p));
    if (it != at_loc_.end()) {
      for (const CandidateRef& ref : it->second) {
        if (ref.via != via && !protected_[static_cast<std::size_t>(ref.via)]) {
          ++conflicting;
        }
      }
    }

    // Killed DVICs: feasible DVICs of unprotected neighbors that become
    // FVP-creating once a redundant via lands at p.
    int killed = 0;
    for (int dy = -2; dy <= 2; ++dy) {
      for (int dx = -2; dx <= 2; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const grid::Point q{p.x + dx, p.y + dy};
        const auto jt = at_loc_.find(loc_key(v_layer, q));
        if (jt == at_loc_.end()) continue;
        bool any_live = false;
        for (const CandidateRef& ref : jt->second) {
          if (ref.via != via && !protected_[static_cast<std::size_t>(ref.via)]) {
            any_live = true;
            break;
          }
        }
        if (!any_live || db_.has(v_layer, q)) continue;
        if (db_.would_create_fvp(v_layer, q)) continue;  // already dead
        if (would_kill(v_layer, p, q)) ++killed;
      }
    }

    const double feas =
        static_cast<double>(problem_.feasible[static_cast<std::size_t>(via)].size());
    return params_.delta * feas + params_.lambda * conflicting + params_.mu * killed;
  }

  /// Would inserting at `p` make a later insertion at `q` create an FVP?
  [[nodiscard]] bool would_kill(int v_layer, grid::Point p, grid::Point q) {
    db_.add(v_layer, p);  // scoped probe, removed right after the check
    const bool killed = db_.would_create_fvp(v_layer, q);
    db_.remove(v_layer, p);
    return killed;
  }

  void insert(int via, int k, DviHeuristicOutput& out) {
    const grid::Point p = loc(via, k);
    db_.add(layer(via), p);
    protected_[static_cast<std::size_t>(via)] = true;
    out.result.inserted[static_cast<std::size_t>(via)] = k;
    out.inserted_at[static_cast<std::size_t>(via)] = p;
  }

  const DviProblem& problem_;
  via::ViaDb db_;
  DviParams params_;
  DviHeuristicOptions options_;
  std::unordered_map<std::int64_t, std::vector<CandidateRef>> at_loc_;
  std::vector<char> protected_;
};

}  // namespace

DviHeuristicOutput run_dvi_heuristic(const DviProblem& problem,
                                     const via::ViaDb& vias,
                                     const DviParams& params,
                                     const DviHeuristicOptions& options) {
  obs::Span span("dvi_heuristic", static_cast<std::int64_t>(problem.num_vias()));
  Heuristic heuristic(problem, vias, params, options);
  return heuristic.run();
}

}  // namespace sadp::core
