#include "core/cost_maps.hpp"

#include <cassert>

namespace sadp::core {

CostMaps::CostMaps(const grid::RoutingGrid& grid, const grid::TurnRules& rules,
                   FlowOptions options)
    : grid_(grid),
      rules_(rules),
      options_(options),
      width_(grid.width()),
      height_(grid.height()),
      num_points_(static_cast<std::size_t>(grid.num_points())),
      num_via_layers_(grid.num_via_layers()) {
  const std::size_t via_cells = static_cast<std::size_t>(num_via_layers_) * num_points_;
  const std::size_t metal_cells =
      static_cast<std::size_t>(grid.num_metal_layers()) * num_points_;
  bdc_via_.assign(via_cells, 0.0);
  amc_via_.assign(via_cells, 0.0);
  cdc_via_.assign(via_cells, 0.0);
  tplc_via_.assign(via_cells, 0.0);
  hist_via_.assign(via_cells, 0.0);
  bdc_metal_.assign(metal_cells, 0.0);
  hist_metal_.assign(metal_cells, 0.0);
  fused_metal_.assign(metal_cells, 0.0);
  fused_via_.assign(via_cells, 0.0);
}

std::vector<double>& CostMaps::array_for(Map map) {
  switch (map) {
    case Map::kBdcVia: return bdc_via_;
    case Map::kBdcMetal: return bdc_metal_;
    case Map::kAmcVia: return amc_via_;
    case Map::kCdcVia: return cdc_via_;
    case Map::kTplcVia: return tplc_via_;
  }
  return bdc_via_;
}

void CostMaps::deposit(Map map, std::size_t index, double amount,
                       std::vector<Entry>& record) {
  array_for(map)[index] += amount;
  refresh_fused(map, index);
  record.push_back(Entry{map, static_cast<std::uint32_t>(index), amount});
}

void CostMaps::add_net_costs(const RoutedNet& net) {
  assert(!records_.contains(net.id()));
  std::vector<Entry> record;

  if (options_.consider_dvi) {
    // BDC and CDC around each via of the net (Fig. 9(b)(d)).
    for (const auto& via : net.vias()) {
      const auto dvics =
          feasible_dvics(grid_, rules_, net, via.via_layer, via.at);
      if (dvics.empty()) continue;
      const double bdc = options_.cost.alpha / static_cast<double>(dvics.size());
      const double cdc = options_.cost.beta / static_cast<double>(dvics.size());
      for (const auto& d : dvics) {
        deposit(Map::kBdcVia, via_slot(via.via_layer, d), bdc, record);
        deposit(Map::kBdcMetal, metal_slot(via.via_layer, d), bdc, record);
        deposit(Map::kBdcMetal, metal_slot(via.via_layer + 1, d), bdc, record);
        // Conflict-DVIC via locations: vias adjacent to d (other than via_u
        // itself) would contend for the same DVIC location.
        for (grid::Dir dir : grid::kPlanarDirs) {
          const grid::Point q = d + grid::step(dir);
          if (!grid_.in_bounds(q) || q == via.at) continue;
          deposit(Map::kCdcVia, via_slot(via.via_layer, q), cdc, record);
        }
      }
    }

    // AMC along the net's metal (Fig. 9(c)): a via next to this metal has a
    // DVIC blocked by it.
    for (const auto& [key, arms] : net.metal()) {
      const int layer = key_layer(key);
      const grid::Point p = key_point(key);
      for (grid::Dir dir : grid::kPlanarDirs) {
        const grid::Point q = p + grid::step(dir);
        if (!grid_.in_bounds(q)) continue;
        for (int v : {layer - 1, layer}) {
          if (v < 1 || v > num_via_layers_) continue;
          deposit(Map::kAmcVia, via_slot(v, q), options_.cost.amc, record);
        }
      }
    }
  }

  if (options_.consider_tpl) {
    // TPLC on every different-color via location around each via: gamma per
    // existing conflicting via, accumulated incrementally.
    for (const auto& via : net.vias()) {
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          const grid::Point q{via.at.x + dx, via.at.y + dy};
          if (!grid_.in_bounds(q) || !via::vias_conflict(via.at, q)) continue;
          deposit(Map::kTplcVia, via_slot(via.via_layer, q), options_.cost.gamma,
                  record);
        }
      }
    }
  }

  records_.emplace(net.id(), std::move(record));
}

void CostMaps::merge_history_from(const CostMaps& other, grid::Point offset) {
  const int metal_layers =
      static_cast<int>(other.hist_metal_.size() / other.num_points_);
  for (int layer = 1; layer <= metal_layers; ++layer) {
    for (int y = 0; y < other.height_; ++y) {
      for (int x = 0; x < other.width_; ++x) {
        const double h = other.hist_metal_[other.metal_slot(layer, {x, y})];
        if (h == 0.0) continue;
        bump_metal_history(layer, {x + offset.x, y + offset.y}, h);
      }
    }
  }
  for (int layer = 1; layer <= other.num_via_layers_; ++layer) {
    for (int y = 0; y < other.height_; ++y) {
      for (int x = 0; x < other.width_; ++x) {
        const double h = other.hist_via_[other.via_slot(layer, {x, y})];
        if (h == 0.0) continue;
        bump_via_history(layer, {x + offset.x, y + offset.y}, h);
      }
    }
  }
}

void CostMaps::remove_net_costs(grid::NetId net) {
  const auto it = records_.find(net);
  if (it == records_.end()) return;
  for (const Entry& entry : it->second) {
    array_for(entry.map)[entry.index] -= entry.amount;
    refresh_fused(entry.map, entry.index);
  }
  records_.erase(it);
}

}  // namespace sadp::core
