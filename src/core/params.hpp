// Tunable parameters of the SADP-aware detailed routing flow.
//
// The cost-assignment parameters follow the paper's Table II: alpha = 8
// (BDC numerator), AMC = 1, beta = 4 (CDC numerator), gamma = 4 (TPLC
// multiplier); the DVI-penalty weights delta = lambda = mu = 1.  The
// remaining knobs (base costs, negotiation schedule) are implementation
// parameters of the negotiated-congestion framework of [20], which the
// paper inherits.
#pragma once

#include <cstddef>

#include "grid/colored_grid.hpp"
#include "util/cancel.hpp"
#include "util/executor.hpp"

namespace sadp::core {

/// Cost-assignment scheme parameters (paper Section III-B, Table II).
struct CostParams {
  double alpha = 8.0;  ///< BDC = alpha / #feasible DVICs of the via
  double amc = 1.0;    ///< along-metal cost (constant)
  double beta = 4.0;   ///< CDC = beta / #feasible DVICs of the via
  double gamma = 4.0;  ///< TPLC = gamma * #coloring conflicts
};

/// DVI-penalty weights of the post-routing heuristic (Algorithm 3).
struct DviParams {
  double delta = 1.0;   ///< weight of #feasible DVICs of the via
  double lambda = 1.0;  ///< weight of #conflicting DVICs with the DVIC
  double mu = 1.0;      ///< weight of #killed DVICs by the DVIC
};

/// The conference version [36] used smaller cost-assignment weights; the
/// journal version "enlarges the parameters to emphasize DVI consideration"
/// (Table V).  These reproduce that ablation.
[[nodiscard]] inline CostParams conference_cost_params() {
  return CostParams{2.0, 0.5, 1.0, 4.0};
}

/// Base routing costs of the restricted detailed routing model.
struct RoutingCosts {
  double segment = 1.0;          ///< preferred-direction unit segment
  double non_preferred = 4.0;    ///< multiplier for non-preferred segments
  double via = 2.0;              ///< via base cost
  double non_preferred_turn = 1.5;  ///< extra cost of a non-preferred turn
};

/// Negotiated-congestion schedule.
struct NegotiationParams {
  double present_factor_initial = 1.0;  ///< first-iteration overlap penalty
  double present_factor_growth = 1.6;   ///< growth per R&R round
  double present_factor_max = 512.0;
  double history_increment = 1.0;
  /// Hard cap on rip-up/reroute iterations, as a multiple of the net count.
  double max_iterations_per_net = 40.0;
};

/// Which of the paper's optional considerations are active.  The four
/// combinations are the four experiment arms of Tables III/IV.
struct FlowOptions {
  grid::SadpStyle style = grid::SadpStyle::kSim;
  bool consider_dvi = false;  ///< BDC/AMC/CDC costs in routing
  bool consider_tpl = false;  ///< TPLC cost + TPL-violation-removal R&R
  CostParams cost;
  DviParams dvi;
  RoutingCosts routing;
  NegotiationParams negotiation;
  /// Partition-parallel routing: shard the grid into up to `partitions`
  /// strip regions (with `partition_halo` slack each side of the cuts),
  /// route regions concurrently on private sub-grid worlds, then merge and
  /// reconcile boundary/halo conflicts serially.  1 (the default) runs the
  /// classic single-world flow bit-identically; results at a fixed K > 1
  /// are deterministic but follow a different (cost-equivalent) net order
  /// than K = 1 — see DESIGN.md section 14.
  int partitions = 1;
  /// Halo margin (grid units) each region window extends past its core on
  /// the cut axis.  The halo is detour/search room only: a net stays
  /// regional when its bounding box fits the owner's *core* strip (see
  /// core/partition.cpp for the measured cost of looser assignment);
  /// everything else routes in the boundary pass before the regions and is
  /// injected into overlapping sub-worlds as immovable obstacle geometry.
  int partition_halo = 16;
  /// Threads for the region workers.  Null = spawn one transient
  /// std::thread per region.  Never hand this a fixed-size pool that is
  /// itself executing the enclosing job (see util/executor.hpp on
  /// re-entrancy) — the engine deliberately does not forward its pool here.
  util::Executor* executor = nullptr;
  /// Cooperative stop signal, polled by the router's R&R loops, the
  /// coloring fix loop and the DVI solvers.  A default token never fires;
  /// the FlowEngine installs one per job (job deadline + batch cancel).
  /// When it fires the flow stops early and reports a cancelled/timeout
  /// status instead of a complete result.
  util::CancelToken cancel;
};

}  // namespace sadp::core
