// Solution validation: independent checks of the router's guarantees,
// used by the integration tests and available to library users.
#pragma once

#include <string>
#include <vector>

#include "core/dvic.hpp"
#include "core/router.hpp"
#include "netlist/netlist.hpp"

namespace sadp::core {

struct ValidationIssue {
  std::string what;
};

/// Every net's metal + vias form one connected component containing all of
/// its pins (connectivity through vias and unit-adjacent same-layer arms).
[[nodiscard]] std::vector<ValidationIssue> check_connectivity(
    const std::vector<RoutedNet>& nets, const netlist::PlacedNetlist& netlist);

/// No grid vertex (metal or via) is occupied by more than one net.
[[nodiscard]] std::vector<ValidationIssue> check_no_congestion(
    const grid::RoutingGrid& grid);

/// No net contains a forbidden turn under the rule table.
[[nodiscard]] std::vector<ValidationIssue> check_no_forbidden_turns(
    const std::vector<RoutedNet>& nets, const grid::TurnRules& rules);

/// No FVP window exists on any via layer.
[[nodiscard]] std::vector<ValidationIssue> check_no_fvps(const via::ViaDb& vias);

/// The via decomposition graph (all layers) is 3-colorable (exact check).
[[nodiscard]] std::vector<ValidationIssue> check_tpl_colorable(
    const via::ViaDb& vias);

/// A DVI solution is legal: each insertion is at a feasible DVIC, no two
/// redundant vias share a location, and the combined via set (per layer) is
/// still 3-colorable.
[[nodiscard]] std::vector<ValidationIssue> check_dvi_solution(
    const SadpRouter& router, const DviProblem& problem,
    const std::vector<int>& inserted, const std::vector<grid::Point>& inserted_at);

/// Run every applicable check for a finished flow.
[[nodiscard]] std::vector<ValidationIssue> validate_routing(
    const SadpRouter& router, const netlist::PlacedNetlist& netlist,
    bool expect_tpl_clean);

}  // namespace sadp::core
