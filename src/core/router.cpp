#include "core/router.hpp"

#include <algorithm>
#include <exception>
#include <set>
#include <string>
#include <unordered_set>

#include "core/partition.hpp"
#include "obs/trace.hpp"
#include "util/executor.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"
#include "via/coloring.hpp"
#include "via/decomp_graph.hpp"

namespace sadp::core {

SadpRouter::SadpRouter(const netlist::PlacedNetlist& netlist, FlowOptions options)
    : netlist_(netlist),
      options_(options),
      rules_(grid::TurnRules::for_style(options.style)) {
  // External input: fail loudly in every build type instead of routing a
  // malformed design (the release-mode assert was undefined behavior bait).
  if (!netlist_.valid()) {
    throw FlowError(util::StatusCode::kInvalidInput,
                    "netlist '" + netlist_.name +
                        "' is invalid (empty, out-of-bounds pins, or bad "
                        "layer count)");
  }
  grid_ = std::make_unique<grid::RoutingGrid>(netlist_.width, netlist_.height,
                                              netlist_.num_metal_layers);
  vias_ = std::make_unique<via::ViaDb>(netlist_.width, netlist_.height,
                                       grid_->num_via_layers());
  costs_ = std::make_unique<CostMaps>(*grid_, rules_, options_);
  maze_ = std::make_unique<MazeRouter>(*grid_, rules_, *costs_, *vias_, options_);

  nets_.reserve(netlist_.nets.size());
  for (const auto& net : netlist_.nets) nets_.emplace_back(net.id);
  build_pin_stubs();
}

void SadpRouter::build_pin_stubs() {
  // Every pin is a metal-1 terminal: pad on metal 1, mandatory via up to
  // metal 2, landing pad on metal 2.  Stubs are immovable.
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    RoutedNet& routed = nets_[i];
    for (const auto& pin : netlist_.nets[i].pins) {
      routed.add_metal(1, pin.at, 0);
      routed.add_metal(2, pin.at, 0);
      routed.add_via(1, pin.at, /*is_pin_via=*/true);
    }
    routed.apply_to(*grid_, *vias_);
  }
}

void SadpRouter::add_obstacle(const RoutedNet& net) {
  net.apply_to(*grid_, *vias_);
}

void SadpRouter::rip_net(grid::NetId id) {
  RoutedNet& net = nets_[static_cast<std::size_t>(id)];
  costs_->remove_net_costs(id);
  net.remove_from(*grid_, *vias_);
  net.clear_routing();
}

bool SadpRouter::route_net(grid::NetId id) {
  // Static name + the net id as the span id: the trace stays allocation-free
  // per net, and flow_report can still rank the slowest nets.
  obs::Span net_span("route_net", id);
  RoutedNet& net = nets_[static_cast<std::size_t>(id)];
  const auto& pins = netlist_.nets[static_cast<std::size_t>(id)].pins;

  // The maze search hard-excludes forbidden turns against the incoming
  // travel direction and the net's already-materialized arms, but a path
  // that crosses ITSELF merges two leg directions at one point only at
  // materialization time — rarely producing a forbidden L the search never
  // saw.  Detect that after materialization, penalize the corner, and
  // reroute; a couple of attempts always clears it in practice.
  bool ok = true;
  for (int attempt = 0; attempt < 4; ++attempt) {
    // Grow a connected tree from pin 0, always connecting the pin nearest
    // to the current tree next.  Each pending pin caches its Manhattan
    // distance to the tree; after a connection only the newly added tree
    // points are compared, so selection is O(|new| x |pending|) instead of
    // rescanning the whole tree every time.
    std::vector<MetalKey> tree;
    tree.push_back(metal_key(2, pins.front().at));
    std::vector<grid::Point> pending;
    std::vector<int> pending_dist;
    for (std::size_t k = 1; k < pins.size(); ++k) {
      pending.push_back(pins[k].at);
      pending_dist.push_back(grid::manhattan(pins.front().at, pins[k].at));
    }

    ok = true;
    while (!pending.empty() && ok) {
      // Nearest pending pin to the tree (cached; first minimum wins, the
      // tiebreak of the full rescan this replaces).
      std::size_t best = 0;
      int best_dist = INT32_MAX;
      for (std::size_t k = 0; k < pending.size(); ++k) {
        if (pending_dist[k] < best_dist) {
          best_dist = pending_dist[k];
          best = k;
        }
      }
      const grid::Point target = pending[best];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best));
      pending_dist.erase(pending_dist.begin() +
                         static_cast<std::ptrdiff_t>(best));

      std::vector<MetalKey> new_points;
      if (!maze_->route_connection(net, tree, target, &new_points)) {
        ok = false;
        break;
      }
      tree.insert(tree.end(), new_points.begin(), new_points.end());
      tree.push_back(metal_key(2, target));
      for (std::size_t k = 0; k < pending.size(); ++k) {
        int d = std::min(pending_dist[k], grid::manhattan(target, pending[k]));
        for (const MetalKey key : new_points) {
          d = std::min(d, grid::manhattan(key_point(key), pending[k]));
        }
        pending_dist[k] = d;
      }
    }
    if (!ok) break;

    const auto bad_corners = forbidden_turn_corners(net);
    if (bad_corners.empty()) break;
    for (const auto& [layer, p] : bad_corners) {
      costs_->bump_metal_history(layer, p,
                                 options_.negotiation.history_increment * 8.0);
    }
    net.clear_routing();
  }

  net.set_routed(ok);
  net.apply_to(*grid_, *vias_);
  costs_->add_net_costs(net);
  if (ok) {
    unrouted_.erase(std::remove(unrouted_.begin(), unrouted_.end(), id),
                    unrouted_.end());
  } else if (std::find(unrouted_.begin(), unrouted_.end(), id) == unrouted_.end()) {
    unrouted_.push_back(id);
  }
  return ok;
}

std::vector<std::pair<int, grid::Point>> SadpRouter::forbidden_turn_corners(
    const RoutedNet& net) const {
  std::vector<std::pair<int, grid::Point>> corners;
  for (const auto& [key, arms] : net.metal()) {
    const int layer = key_layer(key);
    if (layer < 2) continue;
    const grid::Point p = key_point(key);
    for (grid::Dir h : {grid::Dir::kEast, grid::Dir::kWest}) {
      if (!grid::has_arm(arms, h)) continue;
      for (grid::Dir v : {grid::Dir::kNorth, grid::Dir::kSouth}) {
        if (!grid::has_arm(arms, v)) continue;
        if (rules_.classify(p, grid::turn_kind(h, v)) ==
            grid::TurnClass::kForbidden) {
          corners.push_back({layer, p});
        }
      }
    }
  }
  return corners;
}

void SadpRouter::initial_routing() {
  // Short nets first: they have the least flexibility and lock in the least
  // routing resource.
  std::vector<grid::NetId> order;
  order.reserve(nets_.size());
  for (const auto& net : netlist_.nets) order.push_back(net.id);
  auto net_span = [&](grid::NetId id) {
    const auto& pins = netlist_.nets[static_cast<std::size_t>(id)].pins;
    int lo_x = pins[0].at.x, hi_x = lo_x, lo_y = pins[0].at.y, hi_y = lo_y;
    for (const auto& pin : pins) {
      lo_x = std::min(lo_x, pin.at.x);
      hi_x = std::max(hi_x, pin.at.x);
      lo_y = std::min(lo_y, pin.at.y);
      hi_y = std::max(hi_y, pin.at.y);
    }
    return (hi_x - lo_x) + (hi_y - lo_y);
  };
  std::stable_sort(order.begin(), order.end(), [&](grid::NetId a, grid::NetId b) {
    return net_span(a) < net_span(b);
  });

  maze_->set_present_factor(options_.negotiation.present_factor_initial);
  for (grid::NetId id : order) {
    if (options_.cancel.stop_requested()) return;
    rip_net(id);
    route_net(id);
  }
}

// --- Violation queue ---------------------------------------------------------
//
// Duplicates are tolerated in the heap: validity is re-checked at pop time,
// so a stale duplicate is simply discarded.

void SadpRouter::push_violation(Violation v) {
  v.seq = next_seq_++;
  heap_.push_back(v);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Violation& a, const Violation& b) {
                   return b.higher_priority_than(a);
                 });
  if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
}

bool SadpRouter::violation_still_valid(const Violation& v) const {
  switch (v.kind) {
    case Violation::Kind::kCongestionMetal:
      return grid_->metal_congested(v.layer, v.at);
    case Violation::Kind::kCongestionVia:
      return grid_->via_congested(v.layer, v.at);
    case Violation::Kind::kFvp:
      return vias_->window_is_fvp(v.layer, v.at);
  }
  return false;
}

grid::NetId SadpRouter::choose_ripup_net(const Violation& v) const {
  // Fairness: the candidate ripped the fewest times so far, ties by id.
  grid::NetId best = grid::kNoNet;
  auto consider = [&](grid::NetId id) {
    if (id == grid::kNoNet) return;
    // Obstacle ids (partition boundary geometry injected into a region
    // sub-world) lie past the netlist range and are immovable.
    if (static_cast<std::size_t>(id) >= nets_.size()) return;
    if (best == grid::kNoNet ||
        nets_[static_cast<std::size_t>(id)].rip_count() <
            nets_[static_cast<std::size_t>(best)].rip_count() ||
        (nets_[static_cast<std::size_t>(id)].rip_count() ==
             nets_[static_cast<std::size_t>(best)].rip_count() &&
         id < best)) {
      best = id;
    }
  };

  switch (v.kind) {
    case Violation::Kind::kCongestionMetal:
      for (const auto& occ : grid_->metal_occupants(v.layer, v.at)) consider(occ.net);
      break;
    case Violation::Kind::kCongestionVia:
      for (const grid::NetId id : grid_->via_occupants(v.layer, v.at)) consider(id);
      break;
    case Violation::Kind::kFvp:
      // Candidates: nets with a movable (non-pin) via inside the window
      // (O(1) per occupant via the RoutedNet movable-via index).
      for (int dy = 0; dy < via::kWindowSize; ++dy) {
        for (int dx = 0; dx < via::kWindowSize; ++dx) {
          const grid::Point cell{v.at.x + dx, v.at.y + dy};
          if (!grid_->in_bounds(cell)) continue;
          for (const grid::NetId id : grid_->via_occupants(v.layer, cell)) {
            if (id == grid::kNoNet ||
                static_cast<std::size_t>(id) >= nets_.size()) {
              continue;  // obstacle vias are immovable
            }
            if (nets_[static_cast<std::size_t>(id)].has_movable_via_at(v.layer,
                                                                       cell)) {
              consider(id);
            }
          }
        }
      }
      break;
  }
  return best;
}

void SadpRouter::push_net_violations(grid::NetId id, bool consider_fvps) {
  const RoutedNet& net = nets_[static_cast<std::size_t>(id)];
  for (const auto& [key, arms] : net.metal()) {
    const int layer = key_layer(key);
    if (!grid_->routable(layer)) continue;
    const grid::Point p = key_point(key);
    if (grid_->metal_congested(layer, p)) {
      push_violation(Violation{Violation::Kind::kCongestionMetal, layer, p, 0});
    }
  }
  // The same FVP window overlaps up to nine of the net's vias; pushing (and
  // history-bumping) it once per via bloated the heap and queue_peak, so
  // windows already handled in this call are skipped.
  std::vector<via::FvpWindow> seen_fvps;
  for (const auto& via : net.vias()) {
    if (grid_->via_congested(via.via_layer, via.at)) {
      push_violation(
          Violation{Violation::Kind::kCongestionVia, via.via_layer, via.at, 0});
    }
    if (!consider_fvps) continue;
    for (int oy = via.at.y - via::kWindowSize + 1; oy <= via.at.y; ++oy) {
      for (int ox = via.at.x - via::kWindowSize + 1; ox <= via.at.x; ++ox) {
        const grid::Point origin{ox, oy};
        if (!vias_->window_is_fvp(via.via_layer, origin)) continue;
        const via::FvpWindow window{via.via_layer, origin};
        if (std::find(seen_fvps.begin(), seen_fvps.end(), window) !=
            seen_fvps.end()) {
          continue;
        }
        seen_fvps.push_back(window);
        push_violation(Violation{Violation::Kind::kFvp, via.via_layer, origin, 0});
        // Reroute created an FVP: make its vias more expensive (Alg. 2).
        for (int dy = 0; dy < via::kWindowSize; ++dy) {
          for (int dx = 0; dx < via::kWindowSize; ++dx) {
            const grid::Point cell{ox + dx, oy + dy};
            if (grid_->in_bounds(cell) && vias_->has(via.via_layer, cell)) {
              costs_->bump_via_history(via.via_layer, cell,
                                       options_.negotiation.history_increment);
            }
          }
        }
      }
    }
  }
}

std::size_t SadpRouter::ripup_reroute_loop(bool consider_fvps) {
  return ripup_reroute_loop(consider_fvps,
                            options_.negotiation.present_factor_initial);
}

std::size_t SadpRouter::ripup_reroute_loop(bool consider_fvps,
                                           double start_present_factor) {
  heap_.clear();
  next_seq_ = 0;

  maze_->set_fvp_blocking(consider_fvps);
  present_factor_ =
      std::min(start_present_factor, options_.negotiation.present_factor_max);
  maze_->set_present_factor(present_factor_);

  // Seed with all current violations.
  for (const auto& c : grid_->collect_congestion()) {
    push_violation(Violation{c.is_via ? Violation::Kind::kCongestionVia
                                      : Violation::Kind::kCongestionMetal,
                             c.layer, c.p, 0});
  }
  if (consider_fvps) {
    for (const auto& fvp : vias_->scan_all_fvps()) {
      push_violation(Violation{Violation::Kind::kFvp, fvp.via_layer, fvp.origin, 0});
    }
  }

  const std::size_t cap = static_cast<std::size_t>(
      options_.negotiation.max_iterations_per_net *
      static_cast<double>(std::max<std::size_t>(nets_.size(), 1)));
  const std::size_t escalate_every = std::max<std::size_t>(32, nets_.size() / 4);

  std::size_t iterations = 0;
  auto heap_less = [](const Violation& a, const Violation& b) {
    return b.higher_priority_than(a);
  };

  while (!heap_.empty() && iterations < cap) {
    if (options_.cancel.stop_requested()) break;
    std::pop_heap(heap_.begin(), heap_.end(), heap_less);
    const Violation v = heap_.back();
    heap_.pop_back();

    if (!violation_still_valid(v)) continue;

    ++iterations;
    obs::Span iter_span(consider_fvps ? "tpl_rr_iter" : "congestion_rr_iter",
                        static_cast<std::int64_t>(iterations));
    if (iterations % escalate_every == 0 &&
        present_factor_ < options_.negotiation.present_factor_max) {
      present_factor_ *= options_.negotiation.present_factor_growth;
      maze_->set_present_factor(present_factor_);
    }

    // History escalation at the violating vertex (negotiation).
    const double bump = options_.negotiation.history_increment;
    switch (v.kind) {
      case Violation::Kind::kCongestionMetal:
        costs_->bump_metal_history(v.layer, v.at, bump);
        break;
      case Violation::Kind::kCongestionVia:
        costs_->bump_via_history(v.layer, v.at, bump);
        break;
      case Violation::Kind::kFvp:
        break;  // FVP history is bumped on creation (push_net_violations)
    }

    const grid::NetId rip = choose_ripup_net(v);
    if (rip == grid::kNoNet) continue;  // unresolvable (should not happen)

    nets_[static_cast<std::size_t>(rip)].note_ripped();
    rip_net(rip);
    route_net(rip);
    push_net_violations(rip, consider_fvps);

    // The ripped net may still leave the violation in place (another pair of
    // nets congests the vertex, or other vias keep the FVP): re-check.
    if (violation_still_valid(v)) push_violation(v);

    // Convergence telemetry: one multi-series counter sample per iteration.
    // Every series is an O(1) read with no side effects (fvp_count and
    // congestion_count are incrementally maintained; history_cost_sum is a
    // running total), so sampling cannot perturb the routing result.
    if (obs::tracing_enabled()) {
      obs::counter("rr",
                   {{"fvps", static_cast<double>(vias_->fvp_count())},
                    {"queue", static_cast<double>(heap_.size())},
                    {"congestion", static_cast<double>(grid_->congestion_count())},
                    {"maze_pops", static_cast<double>(maze_->stats().pops)},
                    {"history_sum", costs_->history_cost_sum()}});
    }
  }
  return iterations;
}

void SadpRouter::coloring_fix_loop(RoutingReport& report) {
  for (int round = 0; round < 6; ++round) {
    obs::Span round_span("coloring_round", round);
    if (options_.cancel.stop_requested()) return;
    const via::DecompGraph graph = via::DecompGraph::build_all_layers(*vias_);
    const via::ColoringResult result = via::welsh_powell(graph);
    if (result.complete()) {
      report.uncolorable_vias = 0;
      return;
    }
    // The greedy check failed; an exact check may still succeed (Welsh-
    // Powell is only an upper-bound heuristic).
    if (via::three_colorable(graph)) {
      report.uncolorable_vias = 0;
      return;
    }
    report.uncolorable_vias = static_cast<int>(result.uncolored.size());

    // Rip the owners of uncolorable vias and bump history so reroutes spread
    // the vias out.
    std::set<grid::NetId> owners;
    for (int v : result.uncolored) {
      const grid::Point p = graph.vertex_point(v);
      const int layer = graph.vertex_layer(v);
      costs_->bump_via_history(layer, p, options_.negotiation.history_increment * 4);
      for (const grid::NetId id : grid_->via_occupants(layer, p)) {
        if (id == grid::kNoNet || static_cast<std::size_t>(id) >= nets_.size()) {
          continue;
        }
        if (nets_[static_cast<std::size_t>(id)].has_movable_via_at(layer, p)) {
          owners.insert(id);
        }
      }
    }
    if (owners.empty()) return;
    for (const grid::NetId id : owners) {
      nets_[static_cast<std::size_t>(id)].note_ripped();
      rip_net(id);
      route_net(id);
    }
    report.rr_iterations += owners.size();
    // A reroute can create congestion or FVPs; clean them up.
    ripup_reroute_loop(options_.consider_tpl);
  }
}

void SadpRouter::run_serial_body(RoutingReport& report) {
  util::Timer phase;
  {
    obs::Span span("initial_routing");
    initial_routing();
  }
  report.initial_routing_seconds = phase.seconds();

  phase.reset();
  {
    obs::Span span("congestion_rr");
    report.rr_iterations += ripup_reroute_loop(/*consider_fvps=*/false);
  }
  report.congestion_rr_seconds = phase.seconds();

  if (options_.consider_tpl) {
    phase.reset();
    obs::Span span("tpl_rr");
    report.rr_iterations += ripup_reroute_loop(/*consider_fvps=*/true);
    span.end();
    report.tpl_rr_seconds = phase.seconds();
  }
}

bool SadpRouter::run_partitioned_body(RoutingReport& report) {
  const PartitionPlan plan =
      plan_partitions(netlist_, options_.partitions, options_.partition_halo);
  if (plan.regions.size() < 2) return false;
  const std::size_t num_regions = plan.regions.size();
  report.partition_regions = static_cast<int>(num_regions);
  report.boundary_nets = static_cast<int>(plan.boundary.size());

  util::Timer phase;
  util::Timer sub_phase;

  // Boundary nets first, serially, on the master grid while it holds only
  // pin stubs: a boundary net routed into an empty grid costs what it would
  // in serial initial routing, instead of a far more expensive search over
  // a fully merged, congested grid afterwards.  Their geometry is then
  // injected into every overlapping region sub-world as immovable obstacles
  // so the regions route *around* the spanning nets they cannot see past
  // their cut otherwise.
  {
    obs::Span span("partition.boundary");
    auto net_span = [&](grid::NetId id) {
      const auto& pins = netlist_.nets[static_cast<std::size_t>(id)].pins;
      int lo_x = pins[0].at.x, hi_x = lo_x, lo_y = pins[0].at.y, hi_y = lo_y;
      for (const auto& pin : pins) {
        lo_x = std::min(lo_x, pin.at.x);
        hi_x = std::max(hi_x, pin.at.x);
        lo_y = std::min(lo_y, pin.at.y);
        hi_y = std::max(hi_y, pin.at.y);
      }
      return (hi_x - lo_x) + (hi_y - lo_y);
    };
    std::vector<grid::NetId> order = plan.boundary;
    std::stable_sort(order.begin(), order.end(),
                     [&](grid::NetId a, grid::NetId b) {
                       return net_span(a) < net_span(b);
                     });
    maze_->set_fvp_blocking(false);
    // The grid holds only pin stubs here, so an escalated present factor
    // costs nothing in search effort but keeps boundary routes off the pin
    // pads of yet-unrouted nets — overlaps the region sub-worlds could
    // never resolve (both sides immovable there).
    maze_->set_present_factor(options_.negotiation.present_factor_initial *
                              options_.negotiation.present_factor_growth *
                              options_.negotiation.present_factor_growth);
    for (const grid::NetId id : order) {
      if (options_.cancel.stop_requested()) break;
      rip_net(id);
      route_net(id);
    }
  }
  report.boundary_seconds = sub_phase.seconds();
  // Build the region sub-worlds serially: each is a complete netlist over
  // the region window, pins translated by -offset.  Window origins are
  // aligned to the turn-rule period (partition.hpp), so every periodic
  // classification in a sub-world matches the same grid coordinates.
  struct RegionWork {
    netlist::PlacedNetlist sub;
    grid::Point offset;
    std::vector<grid::NetId> global_ids;  ///< local net id -> global net id
    std::vector<RoutedNet> obstacles;     ///< boundary geometry, clipped
    std::unique_ptr<SadpRouter> router;
    std::size_t rr_iterations = 0;
    double seconds = 0.0;  ///< this region's wall clock (imbalance metric)
    std::exception_ptr error;
  };
  std::vector<RegionWork> works(num_regions);
  for (std::size_t r = 0; r < num_regions; ++r) {
    RegionWork& work = works[r];
    work.offset = plan.region_offset(r);
    work.sub.name = netlist_.name + "#r" + std::to_string(r);
    work.sub.width = plan.region_width(r, netlist_.width);
    work.sub.height = plan.region_height(r, netlist_.height);
    work.sub.num_metal_layers = netlist_.num_metal_layers;
    for (const grid::NetId g : plan.regions[r].nets) {
      const auto& src = netlist_.nets[static_cast<std::size_t>(g)];
      netlist::Net local;
      local.id = static_cast<grid::NetId>(work.sub.nets.size());
      local.name = src.name;
      local.pins.reserve(src.pins.size());
      for (const auto& pin : src.pins) {
        local.pins.push_back(netlist::Pin{
            {pin.at.x - work.offset.x, pin.at.y - work.offset.y}});
      }
      work.sub.nets.push_back(std::move(local));
      work.global_ids.push_back(g);
    }

    // Pin-stub cells of this region's nets: obstacle geometry landing on
    // one would be an immovable-vs-immovable overlap the sub-world cannot
    // resolve (pin stubs survive rip-up).  Those cells are skipped below;
    // the true conflict still exists on the master grid, where reconcile
    // can rip the boundary net.
    std::unordered_set<std::int64_t> stub_keys;
    for (const auto& local : work.sub.nets) {
      for (const auto& pin : local.pins) {
        stub_keys.insert(metal_key(1, pin.at).v);
        stub_keys.insert(metal_key(2, pin.at).v);
      }
    }

    // Clip every boundary net's routed geometry to this region's window.
    // Arm bits that would point outside the sub-grid are stripped; the
    // occupancy is what matters for avoidance, not the severed arm.
    const int win_lo = plan.regions[r].window_lo;
    const int win_hi = plan.regions[r].window_hi;
    grid::NetId obstacle_id = static_cast<grid::NetId>(work.sub.nets.size());
    for (const grid::NetId b : plan.boundary) {
      const RoutedNet& src = nets_[static_cast<std::size_t>(b)];
      RoutedNet clipped(obstacle_id);
      bool any = false;
      for (const auto& [key, arms] : src.metal()) {
        const grid::Point p = key_point(key);
        const int c = plan.cut_along_x ? p.x : p.y;
        if (c < win_lo || c > win_hi) continue;
        const grid::Point q{p.x - work.offset.x, p.y - work.offset.y};
        const int layer = key_layer(key);
        if (layer <= 2 && stub_keys.count(metal_key(layer, q).v) != 0) {
          continue;
        }
        grid::ArmMask mask = arms;
        for (const grid::Dir d : grid::kPlanarDirs) {
          const grid::Point n{q.x + grid::step(d).x, q.y + grid::step(d).y};
          if (n.x < 0 || n.x >= work.sub.width || n.y < 0 ||
              n.y >= work.sub.height) {
            mask = static_cast<grid::ArmMask>(mask & ~grid::arm_bit(d));
          }
        }
        clipped.add_metal(layer, q, mask);
        any = true;
      }
      for (const auto& via : src.vias()) {
        const int c = plan.cut_along_x ? via.at.x : via.at.y;
        if (c < win_lo || c > win_hi) continue;
        const grid::Point q{via.at.x - work.offset.x,
                            via.at.y - work.offset.y};
        if (via.via_layer == 1 && stub_keys.count(metal_key(1, q).v) != 0) {
          continue;
        }
        clipped.add_via(via.via_layer, q, via.is_pin_via);
        any = true;
      }
      if (any) {
        work.obstacles.push_back(std::move(clipped));
        ++obstacle_id;
      }
    }
  }

  // Region phases run concurrently; each worker owns a private router over
  // its sub-world (grid, via DB, cost maps, maze state), so cross-region
  // writes are impossible by construction — workers share nothing mutable.
  FlowOptions region_options = options_;
  region_options.partitions = 1;
  region_options.executor = nullptr;  // regions never nest
  util::run_tasks(
      options_.executor, static_cast<int>(num_regions), [&](int r) {
        RegionWork& work = works[static_cast<std::size_t>(r)];
        if (work.sub.nets.empty()) return;
        util::Timer region_timer;
        try {
          obs::Span span("partition.region", r);
          work.router =
              std::make_unique<SadpRouter>(work.sub, region_options);
          SadpRouter& sub = *work.router;
          for (const RoutedNet& obstacle : work.obstacles) {
            sub.add_obstacle(obstacle);
          }
          sub.initial_routing();
          // Region negotiation starts pre-escalated: sub-worlds are small
          // and their conflicts dense, so the slow pressure ramp tuned for
          // full-grid negotiation only burns iterations here (measured
          // ~30% fewer region R&R iterations at equal quality).
          const double region_start =
              region_options.negotiation.present_factor_initial *
              region_options.negotiation.present_factor_growth *
              region_options.negotiation.present_factor_growth;
          work.rr_iterations +=
              sub.ripup_reroute_loop(/*consider_fvps=*/false, region_start);
          if (region_options.consider_tpl) {
            work.rr_iterations +=
                sub.ripup_reroute_loop(/*consider_fvps=*/true);
          }
        } catch (...) {
          work.error = std::current_exception();
        }
        work.seconds = region_timer.seconds();
      });
  for (auto& work : works) {
    if (work.error) std::rethrow_exception(work.error);
  }
  {
    double total = 0.0;
    for (const RegionWork& work : works) {
      report.region_seconds_max = std::max(report.region_seconds_max,
                                           work.seconds);
      total += work.seconds;
    }
    report.region_seconds_mean = total / static_cast<double>(num_regions);
  }

  // Serial merge in region order: translate each region net back into grid
  // coordinates, apply it, and rebuild its cost record; then fold the
  // region's negotiation history and perf counters into the master state.
  sub_phase.reset();
  {
    obs::Span span("partition.merge");
    for (std::size_t r = 0; r < num_regions; ++r) {
      RegionWork& work = works[r];
      if (!work.router) continue;
      const SadpRouter& sub = *work.router;
      for (std::size_t li = 0; li < work.global_ids.size(); ++li) {
        const grid::NetId g = work.global_ids[li];
        const RoutedNet& routed = sub.nets_[li];
        RoutedNet& master = nets_[static_cast<std::size_t>(g)];
        master.remove_from(*grid_, *vias_);  // pin stubs only at this point
        RoutedNet rebuilt(g);
        for (const auto& [key, arms] : routed.metal()) {
          const grid::Point p = key_point(key);
          rebuilt.add_metal(key_layer(key),
                            {p.x + work.offset.x, p.y + work.offset.y}, arms);
        }
        for (const auto& via : routed.vias()) {
          rebuilt.add_via(via.via_layer,
                          {via.at.x + work.offset.x, via.at.y + work.offset.y},
                          via.is_pin_via);
        }
        rebuilt.set_routed(routed.routed());
        for (int i = 0; i < routed.rip_count(); ++i) rebuilt.note_ripped();
        master = std::move(rebuilt);
        master.apply_to(*grid_, *vias_);
        costs_->add_net_costs(master);
        if (!master.routed()) unrouted_.push_back(g);
      }
      costs_->merge_history_from(*sub.costs_, work.offset);
      maze_->absorb_stats(*sub.maze_);
      region_fvp_cache_hits_ += sub.vias_->fvp_cache_hits();
      report.rr_iterations += work.rr_iterations;
      heap_peak_ = std::max(heap_peak_, sub.heap_peak_);
      work.router.reset();  // free the region world before reconcile
    }
  }
  report.merge_seconds = sub_phase.seconds();
  report.partition_seconds = phase.seconds();
  report.initial_routing_seconds = report.partition_seconds;

  // Serial reconcile on the merged state: the boundary nets are already in
  // place from the pre-region pass, so reconcile is purely the negotiation
  // loops at an escalated present factor — resolving the overlaps and FVPs
  // the regions could not see across their cuts (boundary nets are rippable
  // here like any other) without restarting the pressure schedule.
  phase.reset();
  {
    obs::Span span("partition.reconcile");
    // growth^4 over the initial factor: the merged grid carries each
    // region's already-negotiated pressure, and the few remaining cross-cut
    // conflicts resolve in roughly half the iterations at this level than
    // at the regions' growth^2 (measured; quality is unchanged because
    // history costs, not the present factor, carry the placement memory).
    const double growth = options_.negotiation.present_factor_growth;
    const double escalated = options_.negotiation.present_factor_initial *
                             growth * growth * growth * growth;

    util::Timer loop_timer;
    report.rr_iterations += ripup_reroute_loop(/*consider_fvps=*/false, escalated);
    report.congestion_rr_seconds = loop_timer.seconds();
    if (options_.consider_tpl) {
      loop_timer.reset();
      report.rr_iterations += ripup_reroute_loop(/*consider_fvps=*/true, escalated);
      report.tpl_rr_seconds = loop_timer.seconds();
    }
  }
  report.reconcile_seconds = phase.seconds();
  return true;
}

RoutingReport SadpRouter::run() {
  util::Timer timer;
  RoutingReport report;
  report.partitions = std::max(options_.partitions, 1);

  bool partitioned = false;
  if (options_.partitions > 1) partitioned = run_partitioned_body(report);
  if (!partitioned) run_serial_body(report);

  finish_run(report, timer);
  return report;
}

void SadpRouter::adopt_base_net(grid::NetId id, const RoutedNet& base_net) {
  RoutedNet& net = nets_[static_cast<std::size_t>(id)];
  net.remove_from(*grid_, *vias_);  // pin stubs only at this point
  RoutedNet rebuilt(id);
  for (const auto& [key, arms] : base_net.metal()) {
    rebuilt.add_metal(key_layer(key), key_point(key), arms);
  }
  for (const auto& via : base_net.vias()) {
    rebuilt.add_via(via.via_layer, via.at, via.is_pin_via);
  }
  rebuilt.set_routed(base_net.routed());
  net = std::move(rebuilt);
  net.apply_to(*grid_, *vias_);
  costs_->add_net_costs(net);
  if (!net.routed() &&
      std::find(unrouted_.begin(), unrouted_.end(), id) == unrouted_.end()) {
    unrouted_.push_back(id);
  }
}

RoutingReport SadpRouter::run_eco(const std::vector<grid::NetId>& dirty) {
  util::Timer timer;
  RoutingReport report;
  report.partitions = 1;

  // The base solution already carries a fully negotiated placement, so the
  // dirty subset reroutes at the reconcile-level escalated present factor:
  // restarting the schedule would let the fresh nets trample the adopted
  // state that history costs are there to defend.
  const double growth = options_.negotiation.present_factor_growth;
  const double escalated = options_.negotiation.present_factor_initial *
                           growth * growth * growth * growth;

  util::Timer phase;
  {
    obs::Span span("eco.ripup");
    span.set_str("dirty_nets", std::to_string(dirty.size()));
    // Short nets first, as in initial_routing: least flexibility routes
    // first while the warm state still has the most slack.
    std::vector<grid::NetId> order = dirty;
    auto net_span = [&](grid::NetId id) {
      const auto& pins = netlist_.nets[static_cast<std::size_t>(id)].pins;
      int lo_x = pins[0].at.x, hi_x = lo_x, lo_y = pins[0].at.y, hi_y = lo_y;
      for (const auto& pin : pins) {
        lo_x = std::min(lo_x, pin.at.x);
        hi_x = std::max(hi_x, pin.at.x);
        lo_y = std::min(lo_y, pin.at.y);
        hi_y = std::max(hi_y, pin.at.y);
      }
      return (hi_x - lo_x) + (hi_y - lo_y);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](grid::NetId a, grid::NetId b) {
                       return net_span(a) < net_span(b);
                     });
    maze_->set_fvp_blocking(false);
    maze_->set_present_factor(escalated);
    for (grid::NetId id : order) {
      if (options_.cancel.stop_requested()) break;
      rip_net(id);
      route_net(id);
    }
  }
  report.initial_routing_seconds = phase.seconds();

  {
    obs::Span span("eco.reroute");
    util::Timer loop_timer;
    report.rr_iterations += ripup_reroute_loop(/*consider_fvps=*/false, escalated);
    report.congestion_rr_seconds = loop_timer.seconds();
    if (options_.consider_tpl) {
      loop_timer.reset();
      report.rr_iterations += ripup_reroute_loop(/*consider_fvps=*/true, escalated);
      report.tpl_rr_seconds = loop_timer.seconds();
    }
  }

  finish_run(report, timer);
  return report;
}

void SadpRouter::finish_run(RoutingReport& report, util::Timer& timer) {
  // Retry any nets that failed during the noisy phases.
  if (!options_.cancel.stop_requested()) {
    obs::Span span("retry_unrouted");
    std::vector<grid::NetId> retry;
    std::swap(retry, unrouted_);
    for (const grid::NetId id : retry) {
      rip_net(id);
      route_net(id);
    }
    if (!unrouted_.empty()) {
      report.rr_iterations += ripup_reroute_loop(options_.consider_tpl);
    }
  }

  if (options_.consider_tpl) {
    util::Timer coloring_phase;
    obs::Span span("coloring_fix");
    coloring_fix_loop(report);
    span.end();
    report.coloring_seconds = coloring_phase.seconds();
  }

  report.remaining_congestion = grid_->congestion_count();
  report.remaining_fvps = vias_->fvp_count();
  report.queue_peak = heap_peak_;
  report.maze_pops = maze_->stats().pops;
  report.maze_relaxations = maze_->stats().relaxations;
  report.maze_searches = maze_->stats().searches;
  report.heap_reuse = maze_->stats().heap_reused;
  report.fvp_cache_hits = vias_->fvp_cache_hits() + region_fvp_cache_hits_;
  report.maze_pops_p50 = maze_->search_pops().percentile(0.50);
  report.maze_pops_p95 = maze_->search_pops().percentile(0.95);
  report.maze_pops_max = maze_->search_pops().max();
  report.unrouted_nets = static_cast<int>(unrouted_.size());
  report.routed_all = unrouted_.empty() && report.remaining_congestion == 0;

  for (const auto& net : nets_) {
    report.wirelength += net.wirelength();
    report.via_count += net.via_count();
  }
  report.route_seconds = timer.seconds();
}

}  // namespace sadp::core
