#include "core/partition.hpp"

#include <algorithm>

namespace sadp::core {

namespace {

constexpr int align_down(int v) noexcept {
  return v < 0 ? 0 : (v / kPartitionAlign) * kPartitionAlign;
}

}  // namespace

PartitionPlan plan_partitions(const netlist::PlacedNetlist& netlist,
                              int partitions, int halo) {
  PartitionPlan plan;
  plan.cut_along_x = netlist.width >= netlist.height;
  plan.halo = std::max(halo, 0);
  const int axis_len = plan.cut_along_x ? netlist.width : netlist.height;

  // Every core strip must be wide enough that the halo does not swallow it
  // (and that the sub-world is a meaningful search space); shrink K until
  // that holds.  Fewer than two usable regions means "route serially".
  const int min_core = std::max(2 * plan.halo, 32);
  int k = std::max(partitions, 1);
  if (min_core > 0) k = std::min(k, axis_len / min_core);
  if (k < 2) return plan;

  plan.regions.resize(static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r) {
    auto& region = plan.regions[static_cast<std::size_t>(r)];
    region.core_lo = static_cast<int>(
        (static_cast<long long>(axis_len) * r) / k);
    region.core_hi = static_cast<int>(
        (static_cast<long long>(axis_len) * (r + 1)) / k) - 1;
    region.window_lo = align_down(region.core_lo - plan.halo);
    region.window_hi = std::min(axis_len - 1, region.core_hi + plan.halo);
  }

  for (const auto& net : netlist.nets) {
    int lo = plan.cut_along_x ? net.pins.front().at.x : net.pins.front().at.y;
    int hi = lo;
    for (const auto& pin : net.pins) {
      const int c = plan.cut_along_x ? pin.at.x : pin.at.y;
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    // Region whose core strip contains the bounding-box center.  With the
    // proportional cores above this is just a scaled division, but walking
    // the (tiny) region list keeps the planner independent of the core
    // formula.
    const int center = lo + (hi - lo) / 2;
    std::size_t owner = plan.regions.size() - 1;
    for (std::size_t r = 0; r < plan.regions.size(); ++r) {
      if (center <= plan.regions[r].core_hi) {
        owner = r;
        break;
      }
    }
    // A net is assigned only when its pin bbox fits the owner's *core*
    // strip: adjacent windows overlap by up to two halos, and letting two
    // regions both place nets in that shared band is the main source of
    // post-merge conflicts (measured: admitting even 4 cells of overlap
    // raises merged congestion ~1.5x).  The halo stays purely as
    // detour/search room.  One cell of slack at interior window edges
    // keeps pin-stub geometry inside the sub-world (grid-boundary edges
    // clamp identically in both worlds).
    const auto& win = plan.regions[owner];
    const int slack_lo = win.window_lo == 0 ? 0 : 1;
    const int slack_hi = win.window_hi == axis_len - 1 ? 0 : 1;
    const int fit_lo = std::max(win.core_lo, win.window_lo + slack_lo);
    const int fit_hi = std::min(win.core_hi, win.window_hi - slack_hi);
    if (lo >= fit_lo && hi <= fit_hi) {
      plan.regions[owner].nets.push_back(net.id);
    } else {
      plan.boundary.push_back(net.id);
    }
  }
  return plan;
}

}  // namespace sadp::core
