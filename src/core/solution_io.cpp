#include "core/solution_io.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace sadp::core {

namespace {

const char* style_token(grid::SadpStyle style) {
  return grid::style_name(style);
}

std::optional<grid::SadpStyle> parse_style(const std::string& token) {
  if (token == "SIM") return grid::SadpStyle::kSim;
  if (token == "SID") return grid::SadpStyle::kSid;
  if (token == "SAQP-SIM") return grid::SadpStyle::kSaqpSim;
  if (token == "SIM-TRIM") return grid::SadpStyle::kSimTrim;
  return std::nullopt;
}

}  // namespace

RoutedSolution capture_solution(const std::string& name,
                                const grid::RoutingGrid& grid,
                                grid::SadpStyle style,
                                const std::vector<RoutedNet>& nets) {
  RoutedSolution solution;
  solution.name = name;
  solution.width = grid.width();
  solution.height = grid.height();
  solution.num_metal_layers = grid.num_metal_layers();
  solution.style = style;
  solution.nets = nets;
  return solution;
}

void write_solution(std::ostream& out, const RoutedSolution& solution) {
  out << "solution " << solution.name << ' ' << solution.width << ' '
      << solution.height << ' ' << solution.num_metal_layers << ' '
      << style_token(solution.style) << '\n';
  for (const auto& net : solution.nets) {
    out << "net " << net.id() << '\n';
    // Deterministic order for reproducible files.
    std::vector<std::pair<MetalKey, grid::ArmMask>> metal(net.metal().begin(),
                                                          net.metal().end());
    std::sort(metal.begin(), metal.end(),
              [](const auto& a, const auto& b) { return a.first.v < b.first.v; });
    for (const auto& [key, arms] : metal) {
      const grid::Point p = key_point(key);
      out << "m " << key_layer(key) << ' ' << p.x << ' ' << p.y << ' '
          << static_cast<int>(arms) << '\n';
    }
    std::vector<NetVia> vias = net.vias();
    std::sort(vias.begin(), vias.end());
    for (const auto& via : vias) {
      out << "v " << via.via_layer << ' ' << via.at.x << ' ' << via.at.y << ' '
          << (via.is_pin_via ? 1 : 0) << '\n';
    }
  }
}

std::string solution_to_text(const RoutedSolution& solution) {
  std::ostringstream out;
  write_solution(out, solution);
  return out.str();
}

std::optional<RoutedSolution> read_solution(std::istream& in, std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<RoutedSolution> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  RoutedSolution solution;
  bool have_header = false;
  RoutedNet* current = nullptr;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;

    if (keyword == "solution") {
      std::string style_text;
      if (!(tokens >> solution.name >> solution.width >> solution.height >>
            solution.num_metal_layers >> style_text)) {
        return fail("malformed solution header at line " + std::to_string(line_no));
      }
      const auto style = parse_style(style_text);
      if (!style) return fail("unknown style '" + style_text + "'");
      solution.style = *style;
      have_header = true;
    } else if (keyword == "net") {
      if (!have_header) return fail("net before solution header");
      grid::NetId id = grid::kNoNet;
      if (!(tokens >> id) || id != static_cast<grid::NetId>(solution.nets.size())) {
        return fail("net ids must be dense and ordered at line " +
                    std::to_string(line_no));
      }
      solution.nets.emplace_back(id);
      current = &solution.nets.back();
      current->set_routed(true);
    } else if (keyword == "m") {
      if (current == nullptr) return fail("metal before net");
      int layer = 0, x = 0, y = 0, arms = 0;
      if (!(tokens >> layer >> x >> y >> arms) || layer < 1 ||
          layer > solution.num_metal_layers || arms < 0 || arms > 15) {
        return fail("malformed metal at line " + std::to_string(line_no));
      }
      current->add_metal(layer, {x, y}, static_cast<grid::ArmMask>(arms));
    } else if (keyword == "v") {
      if (current == nullptr) return fail("via before net");
      int layer = 0, x = 0, y = 0, pin = 0;
      if (!(tokens >> layer >> x >> y >> pin) || layer < 1 ||
          layer >= solution.num_metal_layers) {
        return fail("malformed via at line " + std::to_string(line_no));
      }
      current->add_via(layer, {x, y}, pin != 0);
    } else {
      return fail("unknown keyword '" + keyword + "' at line " +
                  std::to_string(line_no));
    }
  }
  if (!have_header) return fail("missing solution header");
  return solution;
}

std::optional<RoutedSolution> parse_solution(const std::string& text,
                                             std::string* error) {
  std::istringstream in(text);
  return read_solution(in, error);
}

util::Status apply_solution(const RoutedSolution& solution,
                            grid::RoutingGrid& grid, via::ViaDb& vias) {
  if (solution.width != grid.width() || solution.height != grid.height()) {
    return util::Status::invalid_input(
        "solution '" + solution.name + "' is " +
        std::to_string(solution.width) + "x" + std::to_string(solution.height) +
        " but the grid is " + std::to_string(grid.width()) + "x" +
        std::to_string(grid.height()));
  }
  if (solution.num_metal_layers != grid.num_metal_layers()) {
    return util::Status::invalid_input(
        "solution '" + solution.name + "' has " +
        std::to_string(solution.num_metal_layers) +
        " metal layers but the grid has " +
        std::to_string(grid.num_metal_layers()));
  }
  // Validate every coordinate before touching the databases: read_solution
  // checks layer ranges but cannot check x/y (the header may legitimately
  // describe a different grid than this one), and a partial apply would
  // leave the caller's grid corrupted.
  for (const auto& net : solution.nets) {
    for (const auto& [key, arms] : net.metal()) {
      const grid::Point p = key_point(key);
      if (!grid.in_bounds(p)) {
        return util::Status::invalid_input(
            "solution '" + solution.name + "' net " + std::to_string(net.id()) +
            ": metal point (" + std::to_string(p.x) + "," +
            std::to_string(p.y) + ") is outside the " +
            std::to_string(grid.width()) + "x" + std::to_string(grid.height()) +
            " grid");
      }
    }
    for (const auto& via : net.vias()) {
      if (!grid.in_bounds(via.at) || via.via_layer < 1 ||
          via.via_layer > grid.num_via_layers()) {
        return util::Status::invalid_input(
            "solution '" + solution.name + "' net " + std::to_string(net.id()) +
            ": via (" + std::to_string(via.at.x) + "," +
            std::to_string(via.at.y) + ") layer " +
            std::to_string(via.via_layer) + " is outside the grid");
      }
    }
  }
  for (const auto& net : solution.nets) net.apply_to(grid, vias);
  return util::Status::ok();
}

}  // namespace sadp::core
