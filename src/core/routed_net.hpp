// Routed geometry of one net and its application to the shared databases.
//
// A RoutedNet accumulates the metal points (with arm masks) and vias of a
// net as its pin-to-pin connections are routed.  The same structure drives
// both directions of bookkeeping: apply_to()/remove_from() keep the routing
// grid and the via database in sync during rip-up and reroute.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "grid/geometry.hpp"
#include "grid/routing_grid.hpp"
#include "via/via_db.hpp"

namespace sadp::core {

/// A via instance of a net.
struct NetVia {
  int via_layer = 1;
  grid::Point at{};
  bool is_pin_via = false;  ///< pin vias are immovable (metal-1 terminals)

  friend constexpr auto operator<=>(const NetVia&, const NetVia&) = default;
};

/// Key for the (layer, point) metal map.
struct MetalKey {
  std::int64_t v;
  friend constexpr bool operator==(MetalKey a, MetalKey b) { return a.v == b.v; }
};

struct MetalKeyHash {
  std::size_t operator()(MetalKey k) const noexcept {
    return std::hash<std::int64_t>{}(k.v);
  }
};

[[nodiscard]] constexpr MetalKey metal_key(int layer, grid::Point p) noexcept {
  return MetalKey{(static_cast<std::int64_t>(layer) << 48) |
                  (static_cast<std::int64_t>(static_cast<std::uint32_t>(p.x)) << 24) |
                  static_cast<std::int64_t>(static_cast<std::uint32_t>(p.y))};
}

[[nodiscard]] constexpr int key_layer(MetalKey k) noexcept {
  return static_cast<int>(k.v >> 48);
}
[[nodiscard]] constexpr grid::Point key_point(MetalKey k) noexcept {
  return {static_cast<std::int32_t>((k.v >> 24) & 0xFFFFFF),
          static_cast<std::int32_t>(k.v & 0xFFFFFF)};
}

class RoutedNet {
 public:
  explicit RoutedNet(grid::NetId id = grid::kNoNet) : id_(id) {}

  [[nodiscard]] grid::NetId id() const noexcept { return id_; }

  /// Add a metal point (merging arm bits) without touching the databases.
  void add_metal(int layer, grid::Point p, grid::ArmMask arms);
  /// Add a unit segment (both endpoints get the facing arm bits).
  void add_segment(int layer, grid::Point from, grid::Dir dir);
  void add_via(int via_layer, grid::Point p, bool is_pin_via = false);

  /// Drop all *routed* geometry, keeping pin stubs (pin vias plus their
  /// metal-1/metal-2 pads).  Used by rip-up.
  void clear_routing();

  /// True when the net has any routed (non-pin-stub) geometry.
  [[nodiscard]] bool routed() const noexcept { return routed_; }
  void set_routed(bool value) noexcept { routed_ = value; }

  /// Arm mask of the net at a metal point (0 when absent).
  [[nodiscard]] grid::ArmMask arms_at(int layer, grid::Point p) const;
  [[nodiscard]] bool has_metal_at(int layer, grid::Point p) const;

  [[nodiscard]] const std::unordered_map<MetalKey, grid::ArmMask, MetalKeyHash>&
  metal() const noexcept {
    return metal_;
  }
  [[nodiscard]] const std::vector<NetVia>& vias() const noexcept { return vias_; }

  /// True when the net has a movable (non-pin) via at (via_layer, p).
  /// O(1) via an index maintained by add_via/clear_routing — the R&R
  /// candidate selection calls this per occupant instead of scanning the
  /// occupant's full via list.
  [[nodiscard]] bool has_movable_via_at(int via_layer, grid::Point p) const {
    return movable_vias_.contains(metal_key(via_layer, p).v);
  }

  /// Wirelength: number of unit segments (each contributes two arm bits).
  [[nodiscard]] long long wirelength() const;
  [[nodiscard]] int via_count() const noexcept { return static_cast<int>(vias_.size()); }

  /// Push / pull this net's geometry into the shared databases.
  void apply_to(grid::RoutingGrid& grid, via::ViaDb& vias) const;
  void remove_from(grid::RoutingGrid& grid, via::ViaDb& vias) const;

  /// Number of times this net has been ripped up (rip fairness metric).
  [[nodiscard]] int rip_count() const noexcept { return rip_count_; }
  void note_ripped() noexcept { ++rip_count_; }

 private:
  grid::NetId id_;
  std::unordered_map<MetalKey, grid::ArmMask, MetalKeyHash> metal_;
  std::vector<NetVia> vias_;
  /// (via_layer, point) keys of the movable vias, kept in sync with vias_.
  std::unordered_set<std::int64_t> movable_vias_;
  bool routed_ = false;
  int rip_count_ = 0;
};

}  // namespace sadp::core
