// Design statistics and machine/human-readable reports for a finished flow.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/dvic.hpp"
#include "core/flow.hpp"
#include "core/router.hpp"

namespace sadp::core {

/// Per-metal-layer statistics of a routed design.
struct LayerStats {
  int layer = 0;
  long long occupied_points = 0;
  long long wire_segments = 0;       ///< unit segments on this layer
  long long preferred_segments = 0;  ///< segments in the preferred direction
  double utilization = 0.0;          ///< occupied / total grid points
};

/// Aggregate statistics of a routed design.
struct DesignStats {
  std::vector<LayerStats> layers;
  std::vector<long long> vias_per_layer;  ///< index = via layer - 1
  long long preferred_turns = 0;
  long long non_preferred_turns = 0;
  /// Histogram of feasible-DVIC counts (index 0..4).
  std::array<long long, 5> dvic_histogram{};
};

/// Walk the routed nets and compute the statistics.
[[nodiscard]] DesignStats collect_design_stats(const SadpRouter& router);

/// Render an ExperimentResult (+ stats) as a human-readable text report.
[[nodiscard]] std::string render_text_report(const ExperimentResult& result,
                                             const DesignStats& stats);

/// Render as JSON (one object; schema mirrors the struct fields).
[[nodiscard]] std::string render_json_report(const ExperimentResult& result,
                                             const DesignStats& stats);

}  // namespace sadp::core
