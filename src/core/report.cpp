#include "core/report.hpp"

#include <bit>
#include <sstream>

#include "util/json.hpp"

namespace sadp::core {

DesignStats collect_design_stats(const SadpRouter& router) {
  DesignStats stats;
  const auto& grid = router.routing_grid();
  const grid::TurnRules& rules = router.turn_rules();

  stats.layers.resize(static_cast<std::size_t>(grid.num_metal_layers()));
  for (int m = 1; m <= grid.num_metal_layers(); ++m) {
    stats.layers[static_cast<std::size_t>(m - 1)].layer = m;
  }
  stats.vias_per_layer.assign(static_cast<std::size_t>(grid.num_via_layers()), 0);

  for (const auto& net : router.nets()) {
    for (const auto& [key, arms] : net.metal()) {
      const int layer = key_layer(key);
      auto& ls = stats.layers[static_cast<std::size_t>(layer - 1)];
      ++ls.occupied_points;
      // Each unit segment contributes one arm bit at each endpoint; count
      // the east/north bits so every segment is counted exactly once.
      for (grid::Dir d : {grid::Dir::kEast, grid::Dir::kNorth}) {
        if (!grid::has_arm(arms, d)) continue;
        ++ls.wire_segments;
        const bool preferred = grid::RoutingGrid::prefers_horizontal(layer) ==
                               grid::is_horizontal(d);
        if (preferred) ++ls.preferred_segments;
      }
      // Turn census.
      if (layer >= 2) {
        const grid::Point p = key_point(key);
        for (grid::Dir h : {grid::Dir::kEast, grid::Dir::kWest}) {
          if (!grid::has_arm(arms, h)) continue;
          for (grid::Dir v : {grid::Dir::kNorth, grid::Dir::kSouth}) {
            if (!grid::has_arm(arms, v)) continue;
            switch (rules.classify(p, grid::turn_kind(h, v))) {
              case grid::TurnClass::kPreferred: ++stats.preferred_turns; break;
              case grid::TurnClass::kNonPreferred:
                ++stats.non_preferred_turns;
                break;
              case grid::TurnClass::kForbidden: break;  // never created
            }
          }
        }
      }
    }
    for (const auto& via : net.vias()) {
      ++stats.vias_per_layer[static_cast<std::size_t>(via.via_layer - 1)];
    }
  }

  const double total_points = static_cast<double>(grid.num_points());
  for (auto& ls : stats.layers) {
    ls.utilization = total_points > 0
                         ? static_cast<double>(ls.occupied_points) / total_points
                         : 0.0;
  }

  // DVIC feasibility histogram.
  const DviProblem problem = build_dvi_problem(router.nets(), grid, rules);
  for (const auto& candidates : problem.feasible) {
    const std::size_t bucket = candidates.size() < 5 ? candidates.size() : 4;
    ++stats.dvic_histogram[bucket];
  }
  return stats;
}

std::string render_text_report(const ExperimentResult& result,
                               const DesignStats& stats) {
  std::ostringstream out;
  out << "design " << result.benchmark << "\n"
      << "  routability: " << (result.routing.routed_all ? "100%" : "INCOMPLETE")
      << "\n  wirelength: " << result.routing.wirelength
      << "\n  vias: " << result.routing.via_count
      << "\n  routing time: " << result.routing.route_seconds << "s"
      << " (initial " << result.routing.initial_routing_seconds << "s, congestion "
      << result.routing.congestion_rr_seconds << "s, TPL " <<
      result.routing.tpl_rr_seconds << "s, coloring "
      << result.routing.coloring_seconds << "s)"
      << "\n  R&R iterations: " << result.routing.rr_iterations
      << "\n  FVPs left: " << result.routing.remaining_fvps
      << ", uncolorable: " << result.routing.uncolorable_vias << "\n";
  for (const auto& layer : stats.layers) {
    out << "  metal " << layer.layer << ": " << layer.occupied_points
        << " points (" << layer.utilization * 100.0 << "% utilization), "
        << layer.wire_segments << " segments (" << layer.preferred_segments
        << " preferred)\n";
  }
  for (std::size_t v = 0; v < stats.vias_per_layer.size(); ++v) {
    out << "  via layer " << v + 1 << ": " << stats.vias_per_layer[v]
        << " vias\n";
  }
  out << "  turns: " << stats.preferred_turns << " preferred, "
      << stats.non_preferred_turns << " non-preferred\n";
  out << "  DVIC histogram (0..4 feasible):";
  for (const long long count : stats.dvic_histogram) out << ' ' << count;
  out << "\n  DVI: " << result.dvi.dead_vias << " dead vias of "
      << result.single_vias << ", " << result.dvi.uncolorable
      << " uncolorable, " << result.dvi.seconds << "s\n";
  return out.str();
}

std::string render_json_report(const ExperimentResult& result,
                               const DesignStats& stats) {
  util::JsonWriter json;
  json.begin_object();
  json.key("benchmark").value(result.benchmark);

  json.key("routing").begin_object();
  json.key("routed_all").value(result.routing.routed_all);
  json.key("wirelength").value(result.routing.wirelength);
  json.key("vias").value(result.routing.via_count);
  json.key("seconds").value(result.routing.route_seconds);
  json.key("initial_seconds").value(result.routing.initial_routing_seconds);
  json.key("congestion_rr_seconds").value(result.routing.congestion_rr_seconds);
  json.key("tpl_rr_seconds").value(result.routing.tpl_rr_seconds);
  json.key("coloring_seconds").value(result.routing.coloring_seconds);
  json.key("rr_iterations").value(result.routing.rr_iterations);
  json.key("remaining_fvps").value(result.routing.remaining_fvps);
  json.key("uncolorable_vias").value(result.routing.uncolorable_vias);
  json.end_object();

  json.key("layers").begin_array();
  for (const auto& layer : stats.layers) {
    json.begin_object();
    json.key("layer").value(layer.layer);
    json.key("occupied_points").value(layer.occupied_points);
    json.key("wire_segments").value(layer.wire_segments);
    json.key("preferred_segments").value(layer.preferred_segments);
    json.key("utilization").value(layer.utilization);
    json.end_object();
  }
  json.end_array();

  json.key("vias_per_layer").begin_array();
  for (const long long count : stats.vias_per_layer) json.value(count);
  json.end_array();

  json.key("turns").begin_object();
  json.key("preferred").value(stats.preferred_turns);
  json.key("non_preferred").value(stats.non_preferred_turns);
  json.end_object();

  json.key("dvic_histogram").begin_array();
  for (const long long count : stats.dvic_histogram) json.value(count);
  json.end_array();

  json.key("dvi").begin_object();
  json.key("dead_vias").value(result.dvi.dead_vias);
  json.key("single_vias").value(result.single_vias);
  json.key("uncolorable").value(result.dvi.uncolorable);
  json.key("seconds").value(result.dvi.seconds);
  json.end_object();

  json.end_object();
  return json.str();
}

}  // namespace sadp::core
