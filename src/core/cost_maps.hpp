// Cost assignment scheme (paper Section III-B, Algorithm 1, Fig. 9) plus
// the negotiated-congestion history costs.
//
// After a net is routed, penalty costs are written into per-vertex cost
// maps so that subsequently routed nets see them:
//
//  * BDC (block-DVIC cost) = alpha / #feasibleDVICs(via_u) on every feasible
//    DVIC location of each via of the net — both on the via layer (a via
//    there blocks the DVIC) and on the two adjacent metal layers (a wire
//    through it blocks the DVIC too);
//  * AMC (along-metal cost), a constant, on via locations next to the
//    net's metal: a via placed there would have a DVIC blocked by this
//    metal;
//  * CDC (conflict-DVIC cost) = beta / #feasibleDVICs(via_u) on via
//    locations whose own DVIC would coincide with a feasible DVIC of via_u;
//  * TPLC (TPL cost) = gamma per existing via within same-color pitch, on
//    every different-color via location around each via of the net.
//
// Because BDC/CDC depend on DVI feasibility *at assignment time* (which
// drifts as other nets route), every contribution is recorded per net so
// rip-up subtracts exactly what routing added.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/dvic.hpp"
#include "core/params.hpp"
#include "core/routed_net.hpp"
#include "grid/routing_grid.hpp"
#include "grid/turns.hpp"

namespace sadp::core {

class CostMaps {
 public:
  CostMaps(const grid::RoutingGrid& grid, const grid::TurnRules& rules,
           FlowOptions options);

  /// Algorithm 1: add this net's BDC/AMC/CDC/TPLC contributions (subject to
  /// the flow options).  The net must currently be applied to the grid.
  void add_net_costs(const RoutedNet& net);

  /// Exact inverse of add_net_costs for the same net.
  void remove_net_costs(grid::NetId net);

  /// Fold the negotiation-history arrays of a region-world cost map into
  /// this one, translating every slot by `offset` (partition merge: the
  /// history a region accumulated keeps steering the reconcile pass).
  /// Only history moves — penalty costs are per-net records and are rebuilt
  /// through add_net_costs when the merged nets are applied.
  void merge_history_from(const CostMaps& other, grid::Point offset);

  [[nodiscard]] bool has_costs_for(grid::NetId net) const {
    return records_.contains(net);
  }

  // --- Queries (hot path of the maze router) -------------------------------

  /// Fused vertex cost of placing a via at (via_layer, p): negotiation
  /// history + BDC + AMC + CDC + TPLC, maintained in place by deposit /
  /// bump_via_history so the maze router pays a single load.  Always equals
  /// via_history + via_penalty bit-exactly (the fused slot is recomputed
  /// from the component arrays in a fixed order on every update).
  [[nodiscard]] double fused_via_cost(int via_layer, grid::Point p) const {
    return fused_via_[via_slot(via_layer, p)];
  }

  /// Fused vertex cost of routing metal through (layer, p): history + BDC.
  [[nodiscard]] double fused_metal_cost(int layer, grid::Point p) const {
    return fused_metal_[metal_slot(layer, p)];
  }

  /// DVI/TPL penalty of placing a via at (via_layer, p).
  [[nodiscard]] double via_penalty(int via_layer, grid::Point p) const {
    const std::size_t i = via_slot(via_layer, p);
    return bdc_via_[i] + amc_via_[i] + cdc_via_[i] + tplc_via_[i];
  }

  /// DVI penalty of routing metal through (layer, p).
  [[nodiscard]] double metal_penalty(int layer, grid::Point p) const {
    return bdc_metal_[metal_slot(layer, p)];
  }

  // --- Negotiation history costs -------------------------------------------

  [[nodiscard]] double metal_history(int layer, grid::Point p) const {
    return hist_metal_[metal_slot(layer, p)];
  }
  [[nodiscard]] double via_history(int via_layer, grid::Point p) const {
    return hist_via_[via_slot(via_layer, p)];
  }
  void bump_metal_history(int layer, grid::Point p, double amount) {
    const std::size_t i = metal_slot(layer, p);
    hist_metal_[i] += amount;
    hist_sum_ += amount;
    refresh_fused_metal(i);
  }
  void bump_via_history(int via_layer, grid::Point p, double amount) {
    const std::size_t i = via_slot(via_layer, p);
    hist_via_[i] += amount;
    hist_sum_ += amount;
    refresh_fused_via(i);
  }

  /// Running sum of all negotiation-history bumps (history never decays, so
  /// this equals the sum over both history arrays).  O(1); sampled per R&R
  /// iteration by the convergence telemetry — a still-climbing sum with a
  /// flat violation count means the negotiation is thrashing, not settling.
  [[nodiscard]] double history_cost_sum() const noexcept { return hist_sum_; }

  [[nodiscard]] const FlowOptions& options() const noexcept { return options_; }

 private:
  enum class Map : std::uint8_t {
    kBdcVia,
    kBdcMetal,
    kAmcVia,
    kCdcVia,
    kTplcVia,
  };
  struct Entry {
    Map map;
    std::uint32_t index;
    double amount;
  };

  void deposit(Map map, std::size_t index, double amount,
               std::vector<Entry>& record);
  [[nodiscard]] std::vector<double>& array_for(Map map);

  // Recompute a fused slot from its components in a fixed association
  // order.  Keeping the order fixed (history + penalty sum) makes the fused
  // value a pure function of the component values, independent of the
  // update history — the bit-exactness invariant the differential tests
  // check.
  void refresh_fused_metal(std::size_t i) {
    fused_metal_[i] = hist_metal_[i] + bdc_metal_[i];
  }
  void refresh_fused_via(std::size_t i) {
    fused_via_[i] =
        hist_via_[i] + (bdc_via_[i] + amc_via_[i] + cdc_via_[i] + tplc_via_[i]);
  }
  void refresh_fused(Map map, std::size_t i) {
    if (map == Map::kBdcMetal) {
      refresh_fused_metal(i);
    } else {
      refresh_fused_via(i);
    }
  }

  [[nodiscard]] std::size_t metal_slot(int layer, grid::Point p) const {
    return static_cast<std::size_t>(layer - 1) * num_points_ +
           static_cast<std::size_t>(p.y) * width_ + p.x;
  }
  [[nodiscard]] std::size_t via_slot(int via_layer, grid::Point p) const {
    return static_cast<std::size_t>(via_layer - 1) * num_points_ +
           static_cast<std::size_t>(p.y) * width_ + p.x;
  }

  const grid::RoutingGrid& grid_;
  const grid::TurnRules& rules_;
  FlowOptions options_;
  int width_;
  int height_;
  std::size_t num_points_;
  int num_via_layers_;

  std::vector<double> bdc_via_;
  std::vector<double> bdc_metal_;
  std::vector<double> amc_via_;
  std::vector<double> cdc_via_;
  std::vector<double> tplc_via_;
  std::vector<double> hist_metal_;
  std::vector<double> hist_via_;
  double hist_sum_ = 0.0;
  // Fused per-slot totals (history + penalties), the single loads of the
  // maze router's vertex-cost queries.
  std::vector<double> fused_metal_;
  std::vector<double> fused_via_;

  std::unordered_map<grid::NetId, std::vector<Entry>> records_;
};

}  // namespace sadp::core
