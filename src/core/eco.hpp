// Incremental ECO re-route (DESIGN.md section 16).
//
// Production routing traffic is dominated by deltas — move a pin, add or
// remove a net, block a region, re-ask.  Instead of paying a full re-route,
// run_eco_flow loads a saved base solution, applies a change list to the
// base netlist, seeds the router's occupancy/history/FVP state warm from the
// surviving base geometry, and rips up only the nets intersecting the dirty
// region.  Negotiation then resumes at the reconcile-level escalated present
// factor and incremental DVI runs on the re-routed subset only.
//
// Dirty-region rule: the dirty rects are the added blockage rects, the old
// and new cells of every moved pin, and the pin cells of every added net.
// A net is dirty when it is itself changed (pin moved, freshly added) or
// when any of its base metal points or vias (x/y, any layer) lies inside a
// dirty rect.  Removed nets merely free their geometry — freed space is not
// dirty.  Untouched nets keep their base geometry bit-identically.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/solution_io.hpp"
#include "netlist/netlist.hpp"
#include "util/status.hpp"

namespace sadp::core {

/// One edit of an ECO change list (wire: `changes` of sadp.flow_delta.v1).
struct EcoChange {
  enum class Kind { kAddNet, kRemoveNet, kMovePin, kAddBlockage };
  Kind kind = Kind::kMovePin;

  grid::NetId net = grid::kNoNet;  ///< remove_net / move_pin: base net id
  int pin = 0;                     ///< move_pin: pin index within the net
  grid::Point to{};                ///< move_pin: new pin location

  std::string name;                ///< add_net: net name
  std::vector<grid::Point> pins;   ///< add_net: pin locations (>= 2)

  grid::Point rect_lo{};           ///< add_blockage: inclusive cell rect
  grid::Point rect_hi{};
};

/// Wire token of a change kind: add_net / remove_net / move_pin /
/// add_blockage.
[[nodiscard]] const char* eco_change_kind_name(EcoChange::Kind kind) noexcept;
[[nodiscard]] std::optional<EcoChange::Kind> parse_eco_change_kind(
    const std::string& name);

/// Everything apply_eco_changes derives from a change list.
struct EcoEditOutcome {
  netlist::PlacedNetlist edited;
  /// base-id -> edited-id; grid::kNoNet for removed nets.  Surviving nets
  /// are renumbered dense in base order; added nets take fresh ids at the
  /// end.
  std::vector<grid::NetId> base_to_new;
  /// Inclusive dirty rects: blockage rects, moved-pin old/new cells and
  /// added-net pin cells as 1x1 rects.
  std::vector<std::pair<grid::Point, grid::Point>> dirty_rects;
  /// Edited ids of structurally changed nets (moved-pin + added) —
  /// unconditionally dirty regardless of geometry.
  std::vector<grid::NetId> changed_nets;
  /// The blockage rects alone (subset of dirty_rects), for obstacle
  /// construction.
  std::vector<std::pair<grid::Point, grid::Point>> blockage_rects;
};

/// Apply the change list to `base`.  Purely structural — no routing state.
/// Changes are applied in order; net ids in changes always refer to base
/// ids.  Rejects out-of-range ids, double removals, out-of-bounds points,
/// degenerate rects and blockages covering a pin of the edited netlist.
[[nodiscard]] util::Status apply_eco_changes(
    const netlist::PlacedNetlist& base, const std::vector<EcoChange>& changes,
    EcoEditOutcome* out);

/// The `delta` summary row of an ECO response.
struct EcoSummary {
  int nets_ripped = 0;     ///< nets re-routed from fresh pin stubs
  int nets_untouched = 0;  ///< nets adopted from the base bit-identically
  int nets_total = 0;      ///< nets in the edited netlist
  int changes = 0;         ///< change-list entries applied
  std::vector<grid::NetId> ripped_ids;  ///< edited-netlist ids, ascending
  double load_seconds = 0.0;    ///< eco.load: base apply + warm seeding
  std::string base_fingerprint;  ///< fnv1a-64 hex of the canonical base text
};

/// A finished ECO flow: the warm re-route's FlowRun (router, table row,
/// status) plus the delta summary and the edited netlist it ran against.
/// flow.result.dvi covers only the re-routed subset (incremental DVI).
struct EcoRun {
  FlowRun flow;
  EcoSummary summary;
  netlist::PlacedNetlist edited;
};

/// Fingerprint of a base solution: fnv1a-64 of its canonical text, as a
/// 16-digit lowercase hex string.  Cache keys and delta summaries both use
/// it, so a client can verify the server patched the base it sent.
[[nodiscard]] std::string solution_fingerprint(const RoutedSolution& solution);

/// Run the incremental flow: edit `base` per `changes`, warm-start from
/// `base_solution`, rip + re-route the dirty subset, run incremental DVI.
/// Returns kInvalidInput (with *out untouched apart from partial summary
/// fields) when the base/changes are inconsistent; a cooperative cancel is
/// reported through out->flow.status like run_flow.
[[nodiscard]] util::Status run_eco_flow(const netlist::PlacedNetlist& base,
                                        const RoutedSolution& base_solution,
                                        const std::vector<EcoChange>& changes,
                                        const FlowConfig& config, EcoRun* out);

}  // namespace sadp::core
