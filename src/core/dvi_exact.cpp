#include "core/dvi_exact.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/dvi_heuristic.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"
#include "via/coloring.hpp"
#include "via/decomp_graph.hpp"

namespace sadp::core {

namespace {

// Fault site (util/failpoint.hpp): 'cancel' behaves exactly like the
// external token firing here — remaining components keep the heuristic
// warm-start answer.
sadp::util::FailPoint g_fp_solver_cancel("solver.cancel");

/// Union-find over via indices.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) { parent_[static_cast<std::size_t>(find(a))] = find(b); }

 private:
  std::vector<int> parent_;
};

class ExactSolver {
 public:
  ExactSolver(const DviProblem& problem, via::ViaDb db, const DviExactParams& params)
      : problem_(problem), db_(std::move(db)), params_(params) {}

  DviExactOutput run() {
    DviExactOutput out;
    const int n = problem_.num_vias();
    out.result.inserted.assign(static_cast<std::size_t>(n), -1);
    out.inserted_at.assign(static_cast<std::size_t>(n), {});
    out.proven_optimal = true;

    // Warm start every component from the heuristic.
    const DviHeuristicOutput warm = run_dvi_heuristic(problem_, db_, DviParams{});

    // Spatial components: vias interact only within Chebyshev distance 4 of
    // their centers (on the same layer).  Bucketed by 4x4 cells so the
    // pairing stays near-linear.
    UnionFind uf(n);
    {
      std::unordered_map<std::int64_t, std::vector<int>> buckets;
      auto bucket_key = [](int layer, int cx, int cy) {
        return (static_cast<std::int64_t>(layer) << 48) ^
               (static_cast<std::int64_t>(static_cast<std::uint32_t>(cx)) << 24) ^
               static_cast<std::int64_t>(static_cast<std::uint32_t>(cy));
      };
      for (int i = 0; i < n; ++i) {
        const auto& via = problem_.vias[static_cast<std::size_t>(i)];
        buckets[bucket_key(via.via_layer, via.at.x / 4, via.at.y / 4)].push_back(i);
      }
      // Two vias interact iff some pair of their features (the via itself
      // or any feasible candidate) coincides or lies within same-color
      // pitch — exactly the variable sharing of the C2/C5/C6/C7 rows.
      auto features = [&](int i) {
        std::vector<grid::Point> f;
        f.push_back(problem_.vias[static_cast<std::size_t>(i)].at);
        for (const auto& c : problem_.feasible[static_cast<std::size_t>(i)]) {
          f.push_back(c);
        }
        return f;
      };
      auto interact = [&](int i, int j) {
        for (const auto& a : features(i)) {
          for (const auto& b : features(j)) {
            if (a == b || via::vias_conflict(a, b)) return true;
          }
        }
        return false;
      };
      for (int i = 0; i < n; ++i) {
        const auto& via = problem_.vias[static_cast<std::size_t>(i)];
        for (int dcx = -1; dcx <= 1; ++dcx) {
          for (int dcy = -1; dcy <= 1; ++dcy) {
            const auto it = buckets.find(bucket_key(
                via.via_layer, via.at.x / 4 + dcx, via.at.y / 4 + dcy));
            if (it == buckets.end()) continue;
            for (const int j : it->second) {
              if (j > i &&
                  grid::chebyshev(
                      via.at, problem_.vias[static_cast<std::size_t>(j)].at) <= 6 &&
                  interact(i, j)) {
                uf.unite(i, j);
              }
            }
          }
        }
      }
    }
    std::vector<std::vector<int>> comps;
    {
      std::vector<int> comp_of(static_cast<std::size_t>(n), -1);
      for (int i = 0; i < n; ++i) {
        const int root = uf.find(i);
        if (comp_of[static_cast<std::size_t>(root)] < 0) {
          comp_of[static_cast<std::size_t>(root)] = static_cast<int>(comps.size());
          comps.emplace_back();
        }
        comps[static_cast<std::size_t>(comp_of[static_cast<std::size_t>(root)])]
            .push_back(i);
      }
    }

    // Residual uncolorable count is inherited from the heuristic's greedy
    // pre-coloring (only ever nonzero for no-TPL routing inputs).
    out.result.uncolorable = warm.result.uncolorable;

    for (const auto& comp : comps) {
      if (params_.cancel.stop_requested() ||
          g_fp_solver_cancel.evaluate().kind == util::FailKind::kCancel) {
        // Remaining components keep the heuristic warm-start answer.
        out.proven_optimal = false;
        commit(comp, component_warm_choice(comp, warm, out), out);
        continue;
      }
      solve_component(comp, warm, out);
      if (clock_.seconds() > params_.time_limit_seconds) out.proven_optimal = false;
    }

    for (int i = 0; i < n; ++i) {
      if (out.result.inserted[static_cast<std::size_t>(i)] < 0) {
        ++out.result.dead_vias;
      }
    }
    out.result.seconds = clock_.seconds();
    out.nodes = nodes_;
    return out;
  }

 private:
  /// Exact 3-colorability of the component's originals plus the currently
  /// committed insertions.
  [[nodiscard]] bool component_colorable(const std::vector<int>& comp,
                                         const std::vector<int>& choice) {
    std::vector<std::pair<grid::Point, int>> located;
    located.reserve(comp.size() * 2);
    for (const int i : comp) {
      located.push_back({problem_.vias[static_cast<std::size_t>(i)].at,
                         problem_.vias[static_cast<std::size_t>(i)].via_layer});
    }
    for (const int i : comp) {
      const int k = choice[static_cast<std::size_t>(i)];
      if (k < 0) continue;
      located.push_back(
          {problem_.feasible[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
           problem_.vias[static_cast<std::size_t>(i)].via_layer});
    }
    return via::three_colorable(via::DecompGraph::from_located(located),
                                /*budget=*/2'000'000);
  }

  void solve_component(const std::vector<int>& comp, const DviHeuristicOutput& warm,
                       DviExactOutput& out) {
    // Order: fewest candidates first (most constrained).
    std::vector<int> order = comp;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return problem_.feasible[static_cast<std::size_t>(a)].size() <
             problem_.feasible[static_cast<std::size_t>(b)].size();
    });

    std::vector<int> choice(out.result.inserted);  // global-sized scratch
    std::vector<int> best_choice;
    int best = -1;

    // Seed with the heuristic's (valid) component solution.
    {
      int warm_count = 0;
      for (const int i : comp) {
        choice[static_cast<std::size_t>(i)] =
            warm.result.inserted[static_cast<std::size_t>(i)];
        if (choice[static_cast<std::size_t>(i)] >= 0) ++warm_count;
      }
      best = warm_count;
      best_choice = choice;
      for (const int i : comp) choice[static_cast<std::size_t>(i)] = -1;
    }

    // If the originals alone are uncolorable (no-TPL arms), exactness over
    // colorability is off the table; keep the heuristic answer.
    if (!component_colorable(comp, choice)) {
      out.proven_optimal = false;
      commit(comp, best_choice, out);
      return;
    }

    const int total = static_cast<int>(comp.size());
    bool aborted = false;
    std::size_t component_nodes = 0;

    // DFS over the insertion choices with the FVP cut; colors at leaves.
    auto dfs = [&](auto&& self, int depth, int inserted) -> void {
      if (aborted) return;
      if (++nodes_ > params_.node_limit ||
          ++component_nodes > params_.component_node_limit ||
          clock_.seconds() > params_.time_limit_seconds ||
          ((nodes_ & 0xFF) == 0 &&
           (params_.cancel.stop_requested() ||
            g_fp_solver_cancel.evaluate().kind == util::FailKind::kCancel))) {
        aborted = true;
        return;
      }
      if (inserted + (total - depth) <= best) return;  // bound
      if (depth == total) {
        if (inserted > best && component_colorable(comp, choice)) {
          best = inserted;
          best_choice = choice;
        }
        return;
      }
      const int i = order[static_cast<std::size_t>(depth)];
      const auto& cands = problem_.feasible[static_cast<std::size_t>(i)];
      const int layer = problem_.vias[static_cast<std::size_t>(i)].via_layer;
      // Try inserting first (maximization), then skipping.
      for (int k = 0; k < static_cast<int>(cands.size()); ++k) {
        const grid::Point p = cands[static_cast<std::size_t>(k)];
        if (db_.has(layer, p)) continue;             // used location / via
        if (db_.would_create_fvp(layer, p)) continue;  // valid cut
        db_.add(layer, p);
        choice[static_cast<std::size_t>(i)] = k;
        self(self, depth + 1, inserted + 1);
        choice[static_cast<std::size_t>(i)] = -1;
        db_.remove(layer, p);
        if (aborted) return;
      }
      self(self, depth + 1, inserted);
    };
    dfs(dfs, 0, 0);
    if (aborted) out.proven_optimal = false;

    commit(comp, best_choice, out);
  }

  /// Global-sized choice vector carrying the warm start's picks for `comp`
  /// (used when an external cancel skips the component's search entirely).
  [[nodiscard]] std::vector<int> component_warm_choice(
      const std::vector<int>& comp, const DviHeuristicOutput& warm,
      const DviExactOutput& out) const {
    std::vector<int> choice(out.result.inserted);
    for (const int i : comp) {
      choice[static_cast<std::size_t>(i)] =
          warm.result.inserted[static_cast<std::size_t>(i)];
    }
    return choice;
  }

  void commit(const std::vector<int>& comp, const std::vector<int>& choice,
              DviExactOutput& out) {
    for (const int i : comp) {
      const int k = choice[static_cast<std::size_t>(i)];
      out.result.inserted[static_cast<std::size_t>(i)] = k;
      if (k >= 0) {
        const grid::Point p =
            problem_.feasible[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
        out.inserted_at[static_cast<std::size_t>(i)] = p;
        // Keep committed insertions visible to later components' FVP checks
        // (they cannot interact, but the shared db must stay consistent).
        db_.add(problem_.vias[static_cast<std::size_t>(i)].via_layer, p);
      }
    }
  }

  const DviProblem& problem_;
  via::ViaDb db_;
  DviExactParams params_;
  util::ThreadCpuTimer clock_;
  std::size_t nodes_ = 0;
};

}  // namespace

DviExactOutput solve_dvi_exact(const DviProblem& problem, const via::ViaDb& vias,
                               const DviExactParams& params) {
  obs::Span span("dvi_exact", static_cast<std::int64_t>(problem.num_vias()));
  ExactSolver solver(problem, vias, params);
  return solver.run();
}

}  // namespace sadp::core
