// Fleet trace merging: combine N per-process sadp.flow_trace.v1 files into
// one Chrome trace-event document (schema sadp.fleet_trace.v1) that shows a
// request's whole journey — dispatcher relay span, daemon admission/run
// spans, engine job span, partition.region spans — on one timeline.
//
// Clock model.  Every process records event timestamps on its own telemetry
// clock (microseconds since its own start, util/timer.hpp) and stamps the
// file with `clock_unix_us`, the CLOCK_REALTIME instant of ts == 0.  The
// merger picks the earliest anchor as the fleet epoch and shifts each
// file's timestamps by (anchor_i - min anchor), so spans recorded by
// different processes land where they actually happened relative to each
// other (alignment error = realtime clock skew between hosts, ~0 for the
// single-machine fleet the smoke tests run).  Each input becomes its own
// pid (input order, starting at 1); the per-file process_name metadata
// event is preserved, so Perfetto labels the swimlanes.  Cross-process
// correlation stays queryable because daemons stamp the propagated
// trace_id/span_id as span args.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace sadp::obs {

inline constexpr const char* kFleetTraceSchema = "sadp.fleet_trace.v1";

/// One input file, already read into memory.  `path` only feeds error
/// messages and the fallback process label.
struct MergeInput {
  std::string path;
  std::string text;
};

struct MergeStats {
  std::size_t processes = 0;
  std::size_t events = 0;
  std::int64_t epoch_unix_us = 0;  ///< the fleet epoch (earliest anchor)
};

/// Merge the inputs into one Chrome trace JSON document in `*out_json`.
/// Inputs missing `clock_unix_us` (pre-fleet traces) are kept unshifted on
/// the fleet epoch.  Fails on unparseable JSON or a missing traceEvents
/// array; an unexpected schema string is tolerated (the format is
/// structural).
[[nodiscard]] util::Status merge_traces(const std::vector<MergeInput>& inputs,
                                        std::string* out_json,
                                        MergeStats* stats = nullptr);

}  // namespace sadp::obs
