// Span tracing for the routing flow.
//
// A TraceSession collects timed spans and counter samples from every thread
// of a flow run and serializes them as Chrome trace-event JSON (schema
// sadp.flow_trace.v1) — open the file in chrome://tracing or
// https://ui.perfetto.dev to see per-job swimlanes, nested route / R&R /
// solver spans, and counter tracks of the convergence state.
//
// Instrumentation is compiled in permanently and costs one relaxed atomic
// load per span site while no session is installed: the Span constructor
// checks obs::tracing_enabled() first and leaves the object inert (no
// allocation, no clock read, no buffer access) when tracing is off.  The
// sites therefore live directly in the router and the solvers, outside
// their inner loops, without a build flag.
//
// Tracing never perturbs results.  Span and counter recording only reads
// flow state, never writes it, so the routed geometry, DVI choices and all
// deterministic perf counters are bit-identical with tracing on or off
// (tests/test_obs.cpp proves it row by row).
//
// Threading model.  Each thread appends to its own buffer (registered with
// the installed session on first use, keyed by a global installation
// generation so stale thread-local caches are never reused across
// sessions); no lock is taken on the recording path.  to_json/write_json
// merge the buffers under the session mutex and must only run after the
// traced threads have been joined (the FlowEngine joins its pool before
// the caller writes the trace).  The session must outlive every Span
// started while it was installed.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace sadp::obs {

inline constexpr const char* kTraceSchema = "sadp.flow_trace.v1";

namespace detail {

extern std::atomic<bool> g_enabled;

/// One recorded event.  Names are borrowed pointers: string literals or
/// strings interned in the owning thread's buffer.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t ts_us = 0;   ///< process telemetry clock microseconds
  std::int64_t dur_us = 0;  ///< complete events only
  std::int64_t id = -1;     ///< optional integer payload; emitted as args.id
  char phase = 'X';         ///< 'X' complete, 'C' counter, 'I' instant
  std::uint8_t num_values = 0;
  std::uint8_t num_strs = 0;
  struct KV {
    const char* key;
    double value;
  };
  struct StrKV {
    const char* key;
    const char* value;  ///< interned in the owning thread's buffer
  };
  std::array<KV, 6> values{};
  std::array<StrKV, 2> strs{};
};

/// Per-thread event storage.  Appended only by the owning thread; drained
/// by TraceSession::to_json after that thread is done (joined or idle).
class ThreadBuffer {
 public:
  explicit ThreadBuffer(int tid) noexcept : tid_(tid) {}

  void append(const TraceEvent& event) { events_.push_back(event); }

  /// Copy a dynamic span name into buffer-owned stable storage.
  [[nodiscard]] const char* intern(const std::string& name) {
    return names_.emplace_back(name).c_str();
  }

  [[nodiscard]] int tid() const noexcept { return tid_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

  void set_thread_name(std::string name) { thread_name_ = std::move(name); }
  [[nodiscard]] const std::string& thread_name() const noexcept {
    return thread_name_;
  }

 private:
  int tid_;
  std::vector<TraceEvent> events_;
  std::deque<std::string> names_;  ///< deque: c_str() stays valid on growth
  std::string thread_name_;
};

[[nodiscard]] std::int64_t now_us() noexcept;

}  // namespace detail

/// The one relaxed load every span site pays when tracing is off.
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

class TraceSession {
 public:
  TraceSession() = default;
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Make this the process-wide recording session (replacing any other) and
  /// enable the span sites.  Timestamps are reported on the process
  /// telemetry clock (microseconds since process start, util/timer.hpp),
  /// the same epoch log-line prefixes use, so log lines, spans, and the
  /// traces of sibling fleet processes line up after sadp_trace_merge
  /// shifts each file by its `clock_unix_us` anchor.
  void install();

  /// Stop recording into this session.  Already-buffered events remain
  /// available to to_json.  Idempotent; also called by the destructor.
  void uninstall();

  [[nodiscard]] bool installed() const noexcept { return installed_; }

  /// Name this process in the trace view (the process_name metadata event
  /// and the top-level `process` member).  Defaults to "sadp_flow"; fleet
  /// daemons set "sadp_routed :port" and the dispatcher "sadp_route_dispatch"
  /// so merged timelines label their swimlanes.
  void set_process_name(std::string name);

  /// Merge all thread buffers into one Chrome trace-event JSON document.
  /// Only call after the traced threads are joined or quiescent.
  [[nodiscard]] std::string to_json() const;

  /// to_json to a file (single write + flush).
  [[nodiscard]] util::Status write_json(const std::string& path) const;

  /// Total recorded events across all thread buffers.
  [[nodiscard]] std::size_t event_count() const;

  /// The calling thread's buffer of the installed session, registering it
  /// on first use; nullptr when no session is installed.
  [[nodiscard]] static detail::ThreadBuffer* thread_buffer();

 private:
  [[nodiscard]] detail::ThreadBuffer* register_thread();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_;
  std::string process_name_ = "sadp_flow";
  bool installed_ = false;
};

/// RAII span: records one complete ('X') event over its lifetime.  Balanced
/// by construction — early returns, exceptions and cancellation paths all
/// run the destructor.  Inert (and allocation-free) when tracing is off.
class Span {
 public:
  explicit Span(const char* name, std::int64_t id = -1) noexcept {
    if (!tracing_enabled()) return;
    begin(name, id);
  }
  /// Dynamic-name span (e.g. one per job); the name is copied into the
  /// thread buffer, so this allocates — only when tracing is on.
  explicit Span(const std::string& name, std::int64_t id = -1) {
    if (!tracing_enabled()) return;
    begin_interned(name, id);
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] bool active() const noexcept { return buffer_ != nullptr; }

  /// Attach/replace the integer payload (args.id) before the span closes.
  void set_id(std::int64_t id) noexcept { id_ = id; }

  /// Attach a string arg (e.g. a propagated trace_id) before the span
  /// closes.  The key must outlive the session (a string literal); the
  /// value is copied into the thread buffer.  At most two per span; extra
  /// calls are dropped.
  void set_str(const char* key, const std::string& value);

  /// Close the span now instead of at scope exit (idempotent; the
  /// destructor then does nothing).
  void end() noexcept {
    if (buffer_ == nullptr) return;
    record_end();
    buffer_ = nullptr;
  }

 private:
  void begin(const char* name, std::int64_t id) noexcept;
  void begin_interned(const std::string& name, std::int64_t id);
  void record_end() noexcept;

  detail::ThreadBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t start_us_ = 0;
  std::int64_t id_ = -1;
  std::uint8_t num_strs_ = 0;
  std::array<detail::TraceEvent::StrKV, 2> strs_{};
};

struct CounterValue {
  const char* key;
  double value;
};

/// Record one sample of a counter track (up to 6 named series per track).
/// Callers should guard with tracing_enabled() so the sampled values are
/// not even computed when tracing is off.
void counter(const char* track, std::initializer_list<CounterValue> values);

/// Record an instant event (a vertical marker in the trace view).
void instant(const char* name, std::int64_t id = -1);

/// A string argument for complete(); the value is copied into the thread
/// buffer when the event is recorded.
struct StrArg {
  const char* key;
  std::string value;
};

/// Record a complete ('X') event with explicit timestamps, for spans whose
/// begin and end are observed on different threads (e.g. the server's
/// admission wait: the epoll thread stamps the start, the runner thread
/// records the event).  Timestamps are microseconds on the process
/// telemetry clock (util::process_uptime_us()).  Callers should guard with
/// tracing_enabled() so arguments are not built when tracing is off.
void complete(const std::string& name, std::int64_t ts_us, std::int64_t dur_us,
              std::initializer_list<StrArg> strs = {});

/// Name the calling thread in the trace view (e.g. "worker 3").
void name_this_thread(const std::string& name);

}  // namespace sadp::obs
