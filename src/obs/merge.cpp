#include "obs/merge.hpp"

#include <cmath>
#include <utility>

#include "util/json.hpp"

namespace sadp::obs {

namespace {

/// Re-emit a parsed value verbatim.  The parser keeps numbers as double;
/// integral values within the exact range are written back as integers so
/// ts/dur/counter values round-trip without a ".0" or exponent form.
void emit_value(util::JsonWriter& json, const util::JsonValue& value) {
  using Type = util::JsonValue::Type;
  switch (value.type) {
    case Type::kNull:
      // Never produced by the trace writer; degrade to 0 rather than fail.
      json.value(0);
      break;
    case Type::kBool:
      json.value(value.bool_value);
      break;
    case Type::kNumber: {
      const double number = value.number_value;
      if (std::floor(number) == number && std::abs(number) <= 9.007199254740992e15) {
        json.value(static_cast<long long>(number));
      } else {
        json.value(number);
      }
      break;
    }
    case Type::kString:
      json.value(value.string_value);
      break;
    case Type::kArray:
      json.begin_array();
      for (const util::JsonValue& element : value.array) {
        emit_value(json, element);
      }
      json.end_array();
      break;
    case Type::kObject:
      json.begin_object();
      for (const auto& [key, member] : value.object) {
        json.key(key);
        emit_value(json, member);
      }
      json.end_object();
      break;
  }
}

/// Copy one trace event, overriding pid and shifting ts.
void emit_event(util::JsonWriter& json, const util::JsonValue& event, int pid,
                std::int64_t shift_us) {
  json.begin_object();
  bool saw_pid = false;
  for (const auto& [key, member] : event.object) {
    if (key == "pid") {
      json.key("pid").value(pid);
      saw_pid = true;
    } else if (key == "ts" && member.is_number()) {
      json.key("ts").value(
          static_cast<long long>(member.number_value) + shift_us);
    } else {
      json.key(key);
      emit_value(json, member);
    }
  }
  if (!saw_pid) json.key("pid").value(pid);
  json.end_object();
}

[[nodiscard]] bool is_process_name_meta(const util::JsonValue& event) {
  const util::JsonValue* name = event.find("name");
  const util::JsonValue* phase = event.find("ph");
  return name != nullptr && name->is_string() &&
         name->string_value == "process_name" && phase != nullptr &&
         phase->is_string() && phase->string_value == "M";
}

[[nodiscard]] std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

struct ParsedInput {
  util::JsonValue doc;
  const util::JsonValue* events = nullptr;
  std::string label;
  std::int64_t anchor_us = 0;
  bool has_anchor = false;
};

}  // namespace

util::Status merge_traces(const std::vector<MergeInput>& inputs,
                          std::string* out_json, MergeStats* stats) {
  if (inputs.empty()) {
    return util::Status::invalid_input("no trace files to merge");
  }

  std::vector<ParsedInput> parsed;
  parsed.reserve(inputs.size());
  for (const MergeInput& input : inputs) {
    std::string error;
    std::optional<util::JsonValue> doc = util::parse_json(input.text, &error);
    if (!doc || !doc->is_object()) {
      return util::Status::invalid_input(
          input.path + ": not a JSON trace document" +
          (error.empty() ? "" : " (" + error + ")"));
    }
    ParsedInput item;
    item.doc = std::move(*doc);
    item.events = item.doc.find("traceEvents");
    if (item.events == nullptr || !item.events->is_array()) {
      return util::Status::invalid_input(input.path +
                                         ": missing traceEvents array");
    }
    const util::JsonValue* anchor = item.doc.find("clock_unix_us");
    if (anchor != nullptr && anchor->is_number()) {
      item.anchor_us = static_cast<std::int64_t>(anchor->number_value);
      item.has_anchor = true;
    }
    const util::JsonValue* process = item.doc.find("process");
    item.label = process != nullptr && process->is_string()
                     ? process->string_value
                     : basename_of(input.path);
    parsed.push_back(std::move(item));
  }

  // The fleet epoch: the earliest process start among anchored inputs.
  // Unanchored (pre-fleet) inputs stay unshifted on that epoch.
  std::int64_t epoch_us = 0;
  bool have_epoch = false;
  for (const ParsedInput& item : parsed) {
    if (!item.has_anchor) continue;
    if (!have_epoch || item.anchor_us < epoch_us) epoch_us = item.anchor_us;
    have_epoch = true;
  }

  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kFleetTraceSchema);
  json.key("displayTimeUnit").value("ms");
  json.key("clock_unix_us").value(static_cast<long long>(epoch_us));
  json.key("processes").value(parsed.size());
  json.key("traceEvents").begin_array();
  std::size_t total_events = 0;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const ParsedInput& item = parsed[i];
    const int pid = static_cast<int>(i) + 1;
    const std::int64_t shift_us =
        item.has_anchor ? item.anchor_us - epoch_us : 0;

    // One process_name metadata event per input, from the resolved label;
    // the input's own (if any) is dropped so each pid is named exactly once.
    json.begin_object();
    json.key("name").value("process_name");
    json.key("ph").value("M");
    json.key("pid").value(pid);
    json.key("args").begin_object();
    json.key("name").value(item.label);
    json.end_object();
    json.end_object();

    for (const util::JsonValue& event : item.events->array) {
      if (!event.is_object() || is_process_name_meta(event)) continue;
      emit_event(json, event, pid, shift_us);
      ++total_events;
    }
  }
  json.end_array();
  json.end_object();

  *out_json = json.str();
  if (stats != nullptr) {
    stats->processes = parsed.size();
    stats->events = total_events;
    stats->epoch_unix_us = epoch_us;
  }
  return util::Status::ok();
}

}  // namespace sadp::obs
