// Process-global metrics: counters, gauges and log2-bucket latency
// histograms, rendered as Prometheus text exposition format.
//
// Same discipline as trace.hpp: instrumentation is compiled in permanently
// and stays cheap when nobody is scraping.  A Counter::inc or Gauge::set is
// one relaxed atomic RMW; a LatencyHistogram::observe_us takes a mutex but
// only runs at request granularity (admission, run, flush — never inside
// the router's inner loops).  Recording only reads flow state, so routed
// rows, journal records and perf counters are bit-identical whether or not
// the process is scraped (tests/test_obs.cpp holds the line).
//
// Registration returns references that stay valid for the life of the
// process; call sites register once (static local or member) and then only
// touch the atomic.  Metric families follow Prometheus naming: counters end
// in `_total`, histograms name their unit (`..._seconds`), labels are
// pre-rendered `key="value"` lists.  Histogram buckets reuse
// util::Histogram's log2 bins: samples are microseconds, bucket edges are
// exposed in seconds, so the exposition is the same deterministic
// distribution StageMetrics already reports for maze pops.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/stats.hpp"

namespace sadp::obs {

/// Monotonically increasing counter.  One relaxed fetch_add per inc.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (queue depth, open connections).
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency distribution over util::Histogram's log2 bins.  Samples are
/// microseconds; the exposition renders bucket edges in seconds.  Guarded
/// by a mutex — record at request granularity only.
class LatencyHistogram {
 public:
  void observe_us(std::uint64_t us) {
    const std::lock_guard<std::mutex> lock(mutex_);
    hist_.add(us);
    sum_us_ += us;
  }

  struct Snapshot {
    util::Histogram hist;
    std::uint64_t sum_us = 0;
  };
  [[nodiscard]] Snapshot snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return {hist_, sum_us_};
  }

  /// Deterministic approximate quantile in milliseconds (see
  /// util::Histogram::percentile); 0 when empty.
  [[nodiscard]] double percentile_ms(double q) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<double>(hist_.percentile(q)) / 1e3;
  }

 private:
  mutable std::mutex mutex_;
  util::Histogram hist_;
  std::uint64_t sum_us_ = 0;
};

/// The process-wide registry.  Thread-safe; returned references are stable
/// until process exit (metrics are never unregistered).
class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& instance();

  /// Register (or look up) one metric of a family.  `name` is the full
  /// Prometheus family name; `help` is taken from the first registration;
  /// `labels` is a pre-rendered label list without braces, e.g.
  /// `backend="127.0.0.1:7070"` or `status="ok"` — empty for none.
  /// Registering the same (name, labels) twice returns the same object.
  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& labels = "");
  LatencyHistogram& histogram(const std::string& name, const std::string& help,
                              const std::string& labels = "");

  /// Prometheus text exposition of every registered metric, families in
  /// name order, label sets in lexicographic order, plus a built-in
  /// `sadp_process_uptime_seconds` gauge on the process telemetry clock.
  [[nodiscard]] std::string render() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;
  struct Impl;
  [[nodiscard]] Impl& impl() const;
};

/// Shorthand for MetricsRegistry::instance().
[[nodiscard]] inline MetricsRegistry& metrics() {
  return MetricsRegistry::instance();
}

}  // namespace sadp::obs
