#include "obs/metrics.hpp"

#include <cstdio>
#include <map>
#include <memory>

#include "util/timer.hpp"

namespace sadp::obs {

namespace {

enum class Type { kCounter, kGauge, kHistogram };

const char* type_name(Type type) {
  switch (type) {
    case Type::kCounter: return "counter";
    case Type::kGauge: return "gauge";
    case Type::kHistogram: return "histogram";
  }
  return "untyped";
}

struct Family {
  Type type = Type::kCounter;
  std::string help;
  // Keyed by the pre-rendered label list; std::map so the exposition is
  // deterministic.  unique_ptr keeps references stable across rehash-free
  // node insertion anyway, but also lets the three metric kinds share one
  // Family struct without a variant.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms;
};

std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string fmt_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

void append_header(std::string& out, const std::string& name,
                   const Family& family) {
  out += "# HELP " + name + ' ' + escape_help(family.help) + '\n';
  out += "# TYPE " + name + ' ';
  out += type_name(family.type);
  out += '\n';
}

/// `name` + `{labels}` (labels may gain an extra pair, e.g. le="...").
std::string series(const std::string& name, const std::string& labels,
                   const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name + '{' + labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

void append_histogram(std::string& out, const std::string& name,
                      const std::string& labels,
                      const LatencyHistogram& histogram) {
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  // Cumulative buckets at the used log2 bin upper edges, microsecond
  // samples exposed in seconds.  Bins past the highest non-empty one fold
  // into +Inf, which keeps an idle histogram to a single bucket line.
  std::size_t highest = 0;
  for (std::size_t bin = 0; bin < util::Histogram::kNumBins; ++bin) {
    if (snap.hist.bin_count(bin) > 0) highest = bin;
  }
  std::uint64_t cumulative = 0;
  if (snap.hist.count() > 0) {
    for (std::size_t bin = 0; bin <= highest; ++bin) {
      cumulative += snap.hist.bin_count(bin);
      const double edge_seconds =
          static_cast<double>(util::Histogram::bin_upper(bin)) / 1e6;
      out += series(name + "_bucket", labels,
                    "le=\"" + fmt_double(edge_seconds) + "\"");
      out += ' ' + std::to_string(cumulative) + '\n';
    }
  }
  out += series(name + "_bucket", labels, "le=\"+Inf\"");
  out += ' ' + std::to_string(snap.hist.count()) + '\n';
  out += series(name + "_sum", labels);
  out += ' ' + fmt_double(static_cast<double>(snap.sum_us) / 1e6) + '\n';
  out += series(name + "_count", labels);
  out += ' ' + std::to_string(snap.hist.count()) + '\n';
}

}  // namespace

struct MetricsRegistry::Impl {
  std::mutex mutex;
  std::map<std::string, Family> families;
};

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl impl;
  return impl;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  auto [it, inserted] = state.families.try_emplace(name);
  if (inserted) {
    it->second.type = Type::kCounter;
    it->second.help = help;
  }
  auto& slot = it->second.counters[labels];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const std::string& labels) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  auto [it, inserted] = state.families.try_emplace(name);
  if (inserted) {
    it->second.type = Type::kGauge;
    it->second.help = help;
  }
  auto& slot = it->second.gauges[labels];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             const std::string& help,
                                             const std::string& labels) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  auto [it, inserted] = state.families.try_emplace(name);
  if (inserted) {
    it->second.type = Type::kHistogram;
    it->second.help = help;
  }
  auto& slot = it->second.histograms[labels];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::string MetricsRegistry::render() const {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  std::string out;
  out +=
      "# HELP sadp_process_uptime_seconds Seconds since process start on the "
      "telemetry clock.\n"
      "# TYPE sadp_process_uptime_seconds gauge\n"
      "sadp_process_uptime_seconds " +
      fmt_double(static_cast<double>(util::process_uptime_us()) / 1e6) + '\n';
  for (const auto& [name, family] : state.families) {
    append_header(out, name, family);
    switch (family.type) {
      case Type::kCounter:
        for (const auto& [labels, metric] : family.counters) {
          out += series(name, labels);
          out += ' ' + std::to_string(metric->value()) + '\n';
        }
        break;
      case Type::kGauge:
        for (const auto& [labels, metric] : family.gauges) {
          out += series(name, labels);
          out += ' ' + std::to_string(metric->value()) + '\n';
        }
        break;
      case Type::kHistogram:
        for (const auto& [labels, metric] : family.histograms) {
          append_histogram(out, name, labels, *metric);
        }
        break;
    }
  }
  return out;
}

}  // namespace sadp::obs
