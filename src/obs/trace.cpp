#include "obs/trace.hpp"

#include <fstream>

#include "util/json.hpp"
#include "util/timer.hpp"

namespace sadp::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

std::int64_t now_us() noexcept { return util::process_uptime_us(); }

namespace {

// The installed session and its installation generation.  The generation is
// bumped on every install/uninstall so a thread-local buffer pointer cached
// under one session is never mistaken for a registration with another.
std::atomic<TraceSession*> g_session{nullptr};
std::atomic<std::uint64_t> g_generation{0};

struct CachedBuffer {
  ThreadBuffer* buffer = nullptr;
  std::uint64_t generation = 0;
};
thread_local CachedBuffer t_cached;

}  // namespace
}  // namespace detail

TraceSession::~TraceSession() { uninstall(); }

void TraceSession::install() {
  const std::lock_guard<std::mutex> lock(mutex_);
  installed_ = true;
  detail::g_session.store(this, std::memory_order_release);
  detail::g_generation.fetch_add(1, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
}

void TraceSession::uninstall() {
  // Disable the span sites first so no new thread registers while the
  // session pointer is being cleared.
  if (detail::g_session.load(std::memory_order_acquire) != this) {
    const std::lock_guard<std::mutex> lock(mutex_);
    installed_ = false;
    return;
  }
  detail::g_enabled.store(false, std::memory_order_release);
  detail::g_generation.fetch_add(1, std::memory_order_release);
  detail::g_session.store(nullptr, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(mutex_);
  installed_ = false;
}

detail::ThreadBuffer* TraceSession::thread_buffer() {
  const std::uint64_t generation =
      detail::g_generation.load(std::memory_order_acquire);
  if (detail::t_cached.generation == generation) {
    return detail::t_cached.buffer;
  }
  TraceSession* session = detail::g_session.load(std::memory_order_acquire);
  detail::ThreadBuffer* buffer =
      session != nullptr ? session->register_thread() : nullptr;
  detail::t_cached = {buffer, generation};
  return buffer;
}

detail::ThreadBuffer* TraceSession::register_thread() {
  const std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(
      std::make_unique<detail::ThreadBuffer>(static_cast<int>(buffers_.size())));
  return buffers_.back().get();
}

std::size_t TraceSession::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events().size();
  return total;
}

void TraceSession::set_process_name(std::string name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  process_name_ = std::move(name);
}

std::string TraceSession::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kTraceSchema);
  json.key("displayTimeUnit").value("ms");
  // The realtime instant of ts == 0 (process start).  sadp_trace_merge uses
  // it to shift per-process files onto one fleet timeline.
  json.key("clock_unix_us")
      .value(static_cast<long long>(util::process_unix_anchor_us()));
  json.key("process").value(process_name_);
  json.key("traceEvents").begin_array();

  json.begin_object();
  json.key("name").value("process_name");
  json.key("ph").value("M");
  json.key("pid").value(1);
  json.key("args").begin_object();
  json.key("name").value(process_name_);
  json.end_object();
  json.end_object();

  for (const auto& buffer : buffers_) {
    json.begin_object();
    json.key("name").value("thread_name");
    json.key("ph").value("M");
    json.key("pid").value(1);
    json.key("tid").value(buffer->tid());
    json.key("args").begin_object();
    json.key("name").value(buffer->thread_name().empty()
                               ? "thread " + std::to_string(buffer->tid())
                               : buffer->thread_name());
    json.end_object();
    json.end_object();
  }

  for (const auto& buffer : buffers_) {
    for (const detail::TraceEvent& event : buffer->events()) {
      json.begin_object();
      json.key("name").value(event.name);
      json.key("ph").value(std::string(1, event.phase));
      json.key("pid").value(1);
      json.key("tid").value(buffer->tid());
      json.key("ts").value(static_cast<long long>(event.ts_us));
      if (event.phase == 'X') {
        json.key("dur").value(static_cast<long long>(event.dur_us));
      }
      if (event.phase == 'I') json.key("s").value("t");
      if (event.id >= 0 || event.num_values > 0 || event.num_strs > 0) {
        json.key("args").begin_object();
        if (event.id >= 0) {
          json.key("id").value(static_cast<long long>(event.id));
        }
        for (std::uint8_t i = 0; i < event.num_values; ++i) {
          json.key(event.values[i].key).value(event.values[i].value);
        }
        for (std::uint8_t i = 0; i < event.num_strs; ++i) {
          json.key(event.strs[i].key).value(event.strs[i].value);
        }
        json.end_object();
      }
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  return json.str();
}

util::Status TraceSession::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return util::Status::internal("cannot open trace file " + path +
                                  " for writing");
  }
  out << to_json() << '\n';
  out.flush();
  if (!out) return util::Status::internal("short write to trace file " + path);
  return util::Status::ok();
}

void Span::begin(const char* name, std::int64_t id) noexcept {
  buffer_ = TraceSession::thread_buffer();
  if (buffer_ == nullptr) return;
  name_ = name;
  id_ = id;
  start_us_ = detail::now_us();
}

void Span::begin_interned(const std::string& name, std::int64_t id) {
  buffer_ = TraceSession::thread_buffer();
  if (buffer_ == nullptr) return;
  name_ = buffer_->intern(name);
  id_ = id;
  start_us_ = detail::now_us();
}

void Span::set_str(const char* key, const std::string& value) {
  if (buffer_ == nullptr || num_strs_ == strs_.size()) return;
  strs_[num_strs_++] = {key, buffer_->intern(value)};
}

void Span::record_end() noexcept {
  detail::TraceEvent event;
  event.name = name_;
  event.ts_us = start_us_;
  event.dur_us = detail::now_us() - start_us_;
  event.id = id_;
  event.phase = 'X';
  event.num_strs = num_strs_;
  event.strs = strs_;
  buffer_->append(event);
}

void counter(const char* track, std::initializer_list<CounterValue> values) {
  if (!tracing_enabled()) return;
  detail::ThreadBuffer* buffer = TraceSession::thread_buffer();
  if (buffer == nullptr) return;
  detail::TraceEvent event;
  event.name = track;
  event.ts_us = detail::now_us();
  event.phase = 'C';
  for (const CounterValue& kv : values) {
    if (event.num_values == event.values.size()) break;
    event.values[event.num_values++] = {kv.key, kv.value};
  }
  buffer->append(event);
}

void instant(const char* name, std::int64_t id) {
  if (!tracing_enabled()) return;
  detail::ThreadBuffer* buffer = TraceSession::thread_buffer();
  if (buffer == nullptr) return;
  detail::TraceEvent event;
  event.name = name;
  event.ts_us = detail::now_us();
  event.id = id;
  event.phase = 'I';
  buffer->append(event);
}

void complete(const std::string& name, std::int64_t ts_us, std::int64_t dur_us,
              std::initializer_list<StrArg> strs) {
  if (!tracing_enabled()) return;
  detail::ThreadBuffer* buffer = TraceSession::thread_buffer();
  if (buffer == nullptr) return;
  detail::TraceEvent event;
  event.name = buffer->intern(name);
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.phase = 'X';
  for (const StrArg& arg : strs) {
    if (event.num_strs == event.strs.size()) break;
    event.strs[event.num_strs++] = {arg.key, buffer->intern(arg.value)};
  }
  buffer->append(event);
}

void name_this_thread(const std::string& name) {
  if (!tracing_enabled()) return;
  detail::ThreadBuffer* buffer = TraceSession::thread_buffer();
  if (buffer == nullptr) return;
  buffer->set_thread_name(name);
}

}  // namespace sadp::obs
