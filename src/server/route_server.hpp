// Long-lived routing service: a TCP daemon around api::dispatch.
//
// sadp_routed listens on a loopback TCP port and speaks the
// newline-delimited JSON protocol of src/api/flow_api.hpp: one
// sadp.flow_request.v1 line in, a stream of sadp.flow_response.v1 lines
// out (one "row" per finished job in completion order, then one "batch"
// summary — or a single "error" line).
//
// Resource model: the server owns ONE WorkerPool for its whole lifetime;
// every admitted request runs its FlowEngine drain loops on that shared
// pool (engine::Executor), so N concurrent batches share a fixed set of
// threads instead of multiplying them.  Admission is bounded: at most
// `max_requests` requests are in flight, and a request beyond that is
// rejected immediately with a structured `resource_exhausted` error line —
// explicit overload, never an unbounded queue.
//
// Cancellation and shutdown:
//   * client disconnect — a failed row write fires the request's cancel
//     token, which stops that batch's in-flight jobs cooperatively;
//   * per-job / batch deadlines — carried inside the request, enforced by
//     the engine's CancelToken chains as in-process runs;
//   * SIGTERM / stop() — fires the server-wide *drain* token: running jobs
//     finish (and are journaled / streamed), unstarted jobs come back
//     kCancelled, the listener closes, and the process exits cleanly.  A
//     journaled batch interrupted this way completes under --resume.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "api/flow_api.hpp"
#include "engine/flow_engine.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace sadp::server {

/// Fixed pool of persistent worker threads implementing engine::Executor.
/// run_parallel enqueues the engine's drain loops and blocks the calling
/// (connection handler) thread until they finish; concurrent requests
/// interleave their loops on the same threads, FIFO.
class WorkerPool : public engine::Executor {
 public:
  /// `workers` <= 0 means hardware concurrency (at least 1).
  explicit WorkerPool(int workers);
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(threads_.size());
  }

  void run_parallel(int tasks, const std::function<void(int)>& work) override;

  /// Reject further work and join the threads.  Idempotent; called by the
  /// destructor.  Pending tasks still run (drain loops exit quickly once
  /// their batch token fires, so shutdown after begin_drain is prompt).
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = ephemeral (read the chosen one back with
  /// port()).  The daemon is a local trusted service — it never binds a
  /// non-loopback address.
  int port = 0;
  /// Shared pool size; 0 = hardware concurrency.  Every request's engine
  /// worker count is capped to this.
  int pool_workers = 0;
  /// Admission bound: requests in flight beyond this are rejected with a
  /// resource_exhausted error line.
  int max_requests = 4;
  /// Reject request lines longer than this (protocol hygiene).
  std::size_t max_request_bytes = 16u << 20;
  /// Suppress the per-request stderr log lines.
  bool quiet = false;
  /// Test hook: invoked on the handler thread after a request is parsed and
  /// admitted, before it is dispatched.  Blocking here holds the admission
  /// slot, which is how the overload test makes rejection deterministic.
  std::function<void()> on_request_admitted;
};

class RouteServer {
 public:
  explicit RouteServer(ServerOptions options = {});
  ~RouteServer();

  RouteServer(const RouteServer&) = delete;
  RouteServer& operator=(const RouteServer&) = delete;

  /// Bind + listen on 127.0.0.1 and start the accept loop.
  [[nodiscard]] util::Status start();

  /// The bound port (after start()).
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Begin graceful drain: stop accepting, let running jobs finish, skip
  /// unstarted ones (kCancelled).  Async-signal-safe (atomic stores only) —
  /// this is the SIGTERM handler's entry point.  Idempotent.
  void begin_drain() noexcept;

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Drain, join the accept loop and every connection handler, shut the
  /// pool down and close the socket.  Idempotent; called by the destructor.
  void stop();

  /// Requests rejected for overload so far.
  [[nodiscard]] std::size_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void handle_connection(int fd, const std::shared_ptr<std::atomic<bool>>& done);
  void reap_handlers(bool join_all);

  ServerOptions options_;
  std::unique_ptr<WorkerPool> pool_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  util::CancelToken drain_token_ = util::CancelToken::cancellable();
  std::atomic<int> active_{0};
  std::atomic<std::size_t> rejected_{0};
  std::mutex handlers_mutex_;
  std::list<Handler> handlers_;
  bool stopped_ = false;
};

/// Route SIGTERM and SIGINT to server->begin_drain() (one server per
/// process).  Pass nullptr to restore the default disposition.
void install_sigterm_drain(RouteServer* server);

}  // namespace sadp::server
