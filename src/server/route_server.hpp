// Long-lived routing service: an epoll event-loop TCP daemon around
// api::dispatch, with a content-addressed result cache and load/liveness
// beacons for multi-daemon fleets.
//
// sadp_routed listens on a loopback TCP port and speaks three newline-
// delimited JSON dialects on the same socket:
//   * one sadp.flow_request.v1 line in, a stream of sadp.flow_response.v1
//     lines out (one "row" per finished job in completion order, then one
//     "batch" summary — or a single "error" line);
//   * one sadp.flow_delta.v1 line in (incremental ECO re-route: base
//     solution + change list, see api/flow_delta.hpp), one "row" + one
//     "delta" summary + one "batch" line out, through the same admission
//     gate and result cache as flow requests;
//   * tiny sadp.control.v1 lines ({"type":"ping"|"stats"|"drain"|"beacon"})
//     answered on the event loop itself, so health probes work even when
//     every admission slot is busy.
//
// I/O model: ONE event-loop thread owns an epoll set over the listener,
// a wake eventfd, and every connection.  Accept, request reads, and
// response writes are nonblocking per-connection state machines — an idle
// connection is one epoll registration plus a buffer, never a thread, so
// thousands of idle clients cannot starve admission.  Only an ADMITTED
// flow request materializes a thread (its "runner", which blocks in
// api::dispatch on the shared WorkerPool); runners are bounded by
// `max_requests`.  Connection states:
//
//   kReading    --request line complete-->  kRunning   (runner spawned)
//        |                             \->  reply+kFlushing (control/error/
//        |                                   rejection — no runner)
//   kRunning    --summary enqueued----->    kFlushing
//   kFlushing   --output drained------->    closed
//
// Rows are produced on engine threads, appended to the connection's
// output buffer under its mutex, and written by the event loop (EPOLLOUT
// is armed only while output is pending).  A write error or EPOLLRDHUP
// fires the request's cancel token, so abandoned batches stop routing.
//
// Result cache: requests without a journal consult a server-wide
// content-addressed ResultCache keyed by the canonical hash of each job
// (see result_cache.hpp).  A hit replays the stored journal object
// byte-identically (label/arm rewritten) with "cache":"hit" in the row
// framing and never touches the pool; misses execute and are inserted.
// Journaled batches bypass the cache entirely: the journal is the
// authority for --resume, and cache-served rows are not journaled, so
// mixing them would leave resume holes.
//
// Beacons: with `beacon_peers` configured, a sender thread periodically
// pushes {"type":"beacon","from":...,"queue_depth":...} to each sibling
// daemon; received beacons land in a peer table surfaced by
// {"type":"stats"}.  This is the daemons' load/liveness gossip; the
// dispatcher's probes are plain stats round trips over the same lines.
//
// Cancellation and shutdown match the PR 5 daemon: client disconnect
// cancels that batch, per-job/batch deadlines ride inside the request,
// and SIGTERM / begin_drain() lets running jobs finish (journaled batches
// complete under --resume) while unstarted jobs come back kCancelled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/control.hpp"
#include "api/flow_api.hpp"
#include "api/flow_delta.hpp"
#include "engine/flow_engine.hpp"
#include "server/result_cache.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace sadp::server {

/// Fixed pool of persistent worker threads implementing engine::Executor.
/// run_parallel enqueues the engine's drain loops and blocks the calling
/// (request runner) thread until they finish; concurrent requests
/// interleave their loops on the same threads, FIFO.
class WorkerPool : public engine::Executor {
 public:
  /// `workers` <= 0 means hardware concurrency (at least 1).
  explicit WorkerPool(int workers);
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(threads_.size());
  }

  void run_parallel(int tasks, const std::function<void(int)>& work) override;

  /// Reject further work and join the threads.  Idempotent; called by the
  /// destructor.  Pending tasks still run (drain loops exit quickly once
  /// their batch token fires, so shutdown after begin_drain is prompt).
  void shutdown();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = ephemeral (read the chosen one back with
  /// port()).  The daemon is a local trusted service — it never binds a
  /// non-loopback address.
  int port = 0;
  /// Shared pool size; 0 = hardware concurrency.  Every request's engine
  /// worker count is capped to this.
  int pool_workers = 0;
  /// Admission bound: flow requests in flight beyond this are rejected
  /// with a resource_exhausted error line.  Control lines are exempt.
  int max_requests = 4;
  /// Reject request lines longer than this (protocol hygiene).
  std::size_t max_request_bytes = 16u << 20;
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_entries = 256;
  /// Sibling daemons ("host:port") to gossip load/liveness beacons to.
  std::vector<std::string> beacon_peers;
  int beacon_interval_ms = 500;
  /// Suppress the per-request stderr log lines.
  bool quiet = false;
  /// Test hook: invoked on the request's runner thread after the request
  /// is parsed and admitted, before it is dispatched.  Blocking here holds
  /// the admission slot, which is how the overload test makes rejection
  /// deterministic.
  std::function<void()> on_request_admitted;
};

class RouteServer {
 public:
  explicit RouteServer(ServerOptions options = {});
  ~RouteServer();

  RouteServer(const RouteServer&) = delete;
  RouteServer& operator=(const RouteServer&) = delete;

  /// Bind + listen on 127.0.0.1 and start the event loop.
  [[nodiscard]] util::Status start();

  /// The bound port (after start()).
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Begin graceful drain: stop accepting, let running jobs finish, skip
  /// unstarted ones (kCancelled).  Async-signal-safe (atomic stores only;
  /// the event loop notices within its poll timeout) — this is the SIGTERM
  /// handler's entry point.  Idempotent.
  void begin_drain() noexcept;

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Drain, run every in-flight request to completion, join the event loop
  /// and the runners, shut the pool down and close the socket.
  /// Idempotent; called by the destructor.
  void stop();

  /// Flow requests rejected for overload so far.
  [[nodiscard]] std::size_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Admitted flow requests currently in flight.
  [[nodiscard]] std::size_t active() const noexcept {
    return static_cast<std::size_t>(active_.load(std::memory_order_acquire));
  }

  [[nodiscard]] std::size_t cache_hits() const noexcept {
    return cache_ ? cache_->hits() : 0;
  }
  [[nodiscard]] std::size_t cache_misses() const noexcept {
    return cache_ ? cache_->misses() : 0;
  }

  /// Snapshot for {"type":"stats"} replies and the --stats client mode.
  [[nodiscard]] api::StatsReply stats() const;

 private:
  enum class ConnState : std::uint8_t { kReading, kRunning, kFlushing };

  /// One client connection.  The event loop owns fd/in/state; `out`,
  /// `out_pos` and `finish` are shared with the runner under `mutex`;
  /// the atomics are the cross-thread signals.
  struct Connection {
    int fd = -1;
    ConnState state = ConnState::kReading;
    std::uint32_t events = 0;  ///< epoll interest currently registered
    std::string in;            ///< accumulating request line
    /// Telemetry timestamps (process telemetry clock, µs).  line_complete
    /// is stamped by the event loop when the request line finishes and read
    /// by the runner (ordered by the thread spawn); summary_enqueued is
    /// stamped by the runner and read by the event loop after it observes
    /// runner_done (acquire) or joins the runner.
    std::int64_t line_complete_us = 0;
    std::int64_t summary_enqueued_us = 0;
    std::mutex mutex;
    std::string out;
    std::size_t out_pos = 0;
    bool finish = false;  ///< close once out is drained
    std::atomic<bool> client_gone{false};
    std::atomic<bool> runner_done{false};
    bool runner_started = false;
    std::thread runner;
    util::CancelToken cancel = util::CancelToken::cancellable();
  };

  void event_loop();
  void accept_ready();
  void read_ready(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn, std::string line);
  void handle_control_line(const std::shared_ptr<Connection>& conn,
                           const std::string& line);
  void run_request(const std::shared_ptr<Connection>& conn,
                   api::FlowRequest request);
  /// Runner body of an admitted sadp.flow_delta.v1 request: cache lookup
  /// by delta_cache_key, dispatch_delta on a miss, and a row + "delta" +
  /// "batch" line stream either way.
  void run_delta_request(const std::shared_ptr<Connection>& conn,
                         api::FlowDeltaRequest request);
  /// Append `line` + '\n' to the connection's output (any thread).
  void enqueue_line(const std::shared_ptr<Connection>& conn,
                    const std::string& line, bool finish_after);
  /// Nonblocking write of pending output; updates EPOLLOUT interest.
  /// Event loop only.
  void flush_output(const std::shared_ptr<Connection>& conn);
  void update_interest(Connection& conn, std::uint32_t events);
  void close_connection(const std::shared_ptr<Connection>& conn);
  /// Close every connection whose stream finished (or died) and whose
  /// runner, if any, has exited.
  void sweep_connections();
  void wake() noexcept;
  void beacon_loop();
  void record_beacon(const api::ControlRequest& beacon);
  [[nodiscard]] int capped_workers(int requested) const noexcept;

  ServerOptions options_;
  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<ResultCache> cache_;
  util::Timer uptime_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = 0;
  std::thread loop_thread_;
  std::thread beacon_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  util::CancelToken drain_token_ = util::CancelToken::cancellable();
  std::atomic<int> active_{0};
  std::atomic<std::size_t> rejected_{0};
  std::map<int, std::shared_ptr<Connection>> connections_;  // event loop only
  bool listener_registered_ = false;

  struct PeerRecord {
    int queue_depth = 0;
    int active = 0;
    double last_seen_uptime = 0.0;  ///< uptime_ timestamp of the last beacon
  };
  mutable std::mutex peers_mutex_;
  std::map<std::string, PeerRecord> peers_;

  std::mutex beacon_cv_mutex_;
  std::condition_variable beacon_cv_;

  bool stopped_ = false;
};

/// Route SIGTERM and SIGINT to server->begin_drain() (one server per
/// process).  Pass nullptr to restore the default disposition.
void install_sigterm_drain(RouteServer* server);

}  // namespace sadp::server
