#include "server/route_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace sadp::server {

namespace {

// Fault sites (util/failpoint.hpp).  Zero-cost unless armed.
util::FailPoint g_fp_net_accept("net.accept");
util::FailPoint g_fp_net_read("net.read");
util::FailPoint g_fp_net_write("net.write");
util::FailPoint g_fp_executor_task("executor.task");

/// Process-global server metric families (obs/metrics.hpp), registered on
/// first use.  A second RouteServer in the same process (tests) shares
/// them — matching Prometheus semantics, where the scrape unit is the
/// process.  Request latency histograms are recorded once per request,
/// never inside the engine's loops.
struct ServerMetrics {
  obs::Counter& requests;
  obs::Counter& rejected;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& queue_depth;
  obs::Gauge& connections;
  obs::LatencyHistogram& admission_wait;
  obs::LatencyHistogram& run;
  obs::LatencyHistogram& flush;
};

ServerMetrics& server_metrics() {
  static ServerMetrics m{
      obs::metrics().counter("sadp_server_requests_total",
                             "Flow requests admitted to a runner."),
      obs::metrics().counter("sadp_server_rejected_total",
                             "Flow requests rejected for overload."),
      obs::metrics().counter("sadp_server_cache_requests_total",
                             "Result-cache lookups by outcome.",
                             "result=\"hit\""),
      obs::metrics().counter("sadp_server_cache_requests_total",
                             "Result-cache lookups by outcome.",
                             "result=\"miss\""),
      obs::metrics().gauge("sadp_server_queue_depth",
                           "Admitted flow requests in flight."),
      obs::metrics().gauge("sadp_server_connections",
                           "Open client connections."),
      obs::metrics().histogram("sadp_server_request_admission_wait_seconds",
                               "Request-line completion to runner start."),
      obs::metrics().histogram("sadp_server_request_run_seconds",
                               "Runner start to batch summary."),
      obs::metrics().histogram("sadp_server_request_flush_seconds",
                               "Batch summary enqueued to connection close "
                               "(row-stream drain)."),
  };
  return m;
}

util::Status errno_status(const std::string& what) {
  return util::Status::internal(what + ": " + std::strerror(errno));
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// "host:port" -> (host, port); false on malformed input.
bool split_host_port(const std::string& addr, std::string* host, int* port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 >= addr.size()) return false;
  *host = addr.substr(0, colon);
  try {
    *port = std::stoi(addr.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return *port > 0 && *port < 65536;
}

/// Blocking one-shot fire-and-forget line to host:port (beacon sender).
void send_oneshot_line(const std::string& host, int port,
                       const std::string& line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) ==
      0) {
    const std::string framed = line + "\n";
    (void)::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL);
  }
  ::close(fd);
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerPool

WorkerPool::WorkerPool(int workers) {
  const int n = engine::FlowEngine::resolve_workers(workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with an empty queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos seam: a delay here models a task stuck behind a descheduled
    // worker (evaluate() already slept); results must be unaffected.
    (void)g_fp_executor_task.evaluate();
    task();
  }
}

void WorkerPool::run_parallel(int tasks,
                              const std::function<void(int)>& work) {
  if (tasks <= 0) return;
  // The caller blocks below until every task ran, so capturing `work` by
  // pointer is safe.
  struct Sync {
    std::mutex mutex;
    std::condition_variable done;
    int remaining;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining = tasks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (int i = 0; i < tasks; ++i) {
      queue_.push_back([sync, &work, i] {
        work(i);
        const std::lock_guard<std::mutex> task_lock(sync->mutex);
        if (--sync->remaining == 0) sync->done.notify_all();
      });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(sync->mutex);
  sync->done.wait(lock, [&sync] { return sync->remaining == 0; });
}

void WorkerPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

// ---------------------------------------------------------------------------
// RouteServer

RouteServer::RouteServer(ServerOptions options)
    : options_(std::move(options)) {}

RouteServer::~RouteServer() { stop(); }

util::Status RouteServer::start() {
  pool_ = std::make_unique<WorkerPool>(options_.pool_workers);
  cache_ = std::make_unique<ResultCache>(options_.cache_entries);
  uptime_.reset();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return errno_status("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) return errno_status("listen");
  if (!set_nonblocking(listen_fd_)) return errno_status("fcntl listener");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return errno_status("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return errno_status("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return errno_status("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return errno_status("epoll_ctl listener");
  }
  listener_registered_ = true;
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return errno_status("epoll_ctl eventfd");
  }

  loop_thread_ = std::thread([this] { event_loop(); });
  if (!options_.beacon_peers.empty()) {
    beacon_thread_ = std::thread([this] { beacon_loop(); });
  }
  return util::Status::ok();
}

void RouteServer::begin_drain() noexcept {
  draining_.store(true, std::memory_order_release);
  drain_token_.request_cancel();  // atomic store; signal-handler safe
  // No wake here: this must stay async-signal-safe, and the event loop
  // polls the flag within its timeout.
}

void RouteServer::wake() noexcept {
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof one);
}

// ---------------------------------------------------------------------------
// Event loop

void RouteServer::event_loop() {
  epoll_event events[64];
  for (;;) {
    // Drain: flow admission stops (handle_line answers a structured
    // "draining" rejection) but the listener stays open, so the control
    // plane — stats, metrics scrapes, ping — keeps working against a
    // draining daemon.  The listener closes only once stop() is underway.
    if (stopping_.load(std::memory_order_acquire) && listener_registered_) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_registered_ = false;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Force idle (request-less) connections shut; running ones finish.
      std::vector<std::shared_ptr<Connection>> idle;
      for (const auto& [fd, conn] : connections_) {
        if (!conn->runner_started ||
            conn->runner_done.load(std::memory_order_acquire)) {
          idle.push_back(conn);
        }
      }
      for (const auto& conn : idle) {
        // Give finished streams one last nonblocking flush before closing.
        flush_output(conn);
        close_connection(conn);
      }
      if (connections_.empty() && !listener_registered_) return;
    }

    const int n = ::epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/100);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t counter = 0;
        (void)!::read(wake_fd_, &counter, sizeof counter);
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      const std::shared_ptr<Connection> conn = it->second;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        conn->client_gone.store(true, std::memory_order_release);
        conn->cancel.request_cancel();
        // Deregister entirely: EPOLLHUP is reported regardless of the
        // interest mask, so a mere MOD would spin the loop until the
        // runner (if any) finishes and the sweep reaps the connection.
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        conn->events = 0;
        continue;
      }
      if (mask & EPOLLIN) read_ready(conn);
      if (mask & EPOLLOUT) flush_output(conn);
      if ((mask & EPOLLRDHUP) && conn->state != ConnState::kReading) {
        // Peer shut its write side after the request; it may still be
        // reading our stream, so only stop watching for input.
        update_interest(*conn, conn->events & ~(EPOLLIN | EPOLLRDHUP));
      }
    }

    // Runners signal new output via the eventfd; push it out and close
    // whatever both sides are done with.
    sweep_connections();
  }
}

void RouteServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN or a transient error: back to epoll
    if (g_fp_net_accept.evaluate().kind == util::FailKind::kError) {
      // Injected accept failure: the client sees a reset, exactly as if
      // the kernel had run out of descriptors.
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->events = EPOLLIN | EPOLLRDHUP;
    epoll_event ev{};
    ev.events = conn->events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    server_metrics().connections.add(1);
  }
}

void RouteServer::read_ready(const std::shared_ptr<Connection>& conn) {
  if (g_fp_net_read.evaluate().kind == util::FailKind::kError) {
    // Injected read failure: same path as a peer that vanished mid-request.
    conn->client_gone.store(true, std::memory_order_release);
    conn->cancel.request_cancel();
    close_connection(conn);
    return;
  }
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, MSG_DONTWAIT);
    if (n < 0) return;  // EAGAIN: request still arriving
    if (n == 0) {
      // EOF.  Before a request: the client vanished — drop the connection.
      // After: the peer is done sending; treat a full close as gone.
      if (conn->state == ConnState::kReading && conn->in.empty() &&
          !conn->finish) {
        close_connection(conn);
      } else if (conn->state == ConnState::kReading) {
        close_connection(conn);
      } else {
        update_interest(*conn, conn->events & ~(EPOLLIN | EPOLLRDHUP));
      }
      return;
    }
    if (conn->state != ConnState::kReading) continue;  // discard extra bytes
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') {
        std::string line = std::move(conn->in);
        conn->in.clear();
        handle_line(conn, std::move(line));
        break;
      }
      conn->in.push_back(chunk[i]);
    }
    if (conn->state == ConnState::kReading &&
        conn->in.size() > options_.max_request_bytes) {
      enqueue_line(conn,
                   api::response_error_line(util::Status::invalid_input(
                       "request exceeds " +
                       std::to_string(options_.max_request_bytes) + " bytes")),
                   /*finish_after=*/true);
      conn->state = ConnState::kFlushing;
      return;
    }
  }
}

void RouteServer::handle_line(const std::shared_ptr<Connection>& conn,
                              std::string line) {
  conn->line_complete_us = util::process_uptime_us();
  if (api::looks_like_control_line(line)) {
    conn->state = ConnState::kFlushing;
    handle_control_line(conn, line);
    return;
  }

  // Admission shared by both flow verbs: drain rejection, then the bounded
  // in-flight slot.  Returns false (with the rejection line enqueued) when
  // the request must not start a runner.
  const auto admit = [&]() -> bool {
    if (draining()) {
      conn->state = ConnState::kFlushing;
      enqueue_line(conn,
                   api::response_error_line(util::Status::resource_exhausted(
                       "server is draining; retry elsewhere")),
                   /*finish_after=*/true);
      return false;
    }
    if (active_.load(std::memory_order_acquire) >= options_.max_requests) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      server_metrics().rejected.inc();
      conn->state = ConnState::kFlushing;
      enqueue_line(conn,
                   api::response_error_line(util::Status::resource_exhausted(
                       "server at capacity (" +
                       std::to_string(options_.max_requests) +
                       " requests in flight); retry later")),
                   /*finish_after=*/true);
      return false;
    }
    active_.fetch_add(1, std::memory_order_acq_rel);
    server_metrics().requests.inc();
    server_metrics().queue_depth.add(1);
    conn->state = ConnState::kRunning;
    conn->runner_started = true;
    return true;
  };

  std::string parse_error;
  if (api::looks_like_delta_line(line)) {
    auto delta = api::parse_delta_request(line, &parse_error);
    if (!delta) {
      conn->state = ConnState::kFlushing;
      enqueue_line(conn,
                   api::response_error_line(
                       util::Status::invalid_input(parse_error)),
                   /*finish_after=*/true);
      return;
    }
    if (!admit()) return;
    if (!options_.quiet) {
      std::fprintf(stderr, "[sadp_routed] delta request: %zu change(s)\n",
                   delta->changes.size());
    }
    std::shared_ptr<Connection> shared = conn;
    api::FlowDeltaRequest moved = std::move(*delta);
    conn->runner = std::thread(
        [this, shared, request = std::move(moved)]() mutable {
          run_delta_request(shared, std::move(request));
          shared->runner_done.store(true, std::memory_order_release);
          wake();
        });
    return;
  }

  auto request = api::parse_request(line, &parse_error);
  if (!request) {
    conn->state = ConnState::kFlushing;
    enqueue_line(conn,
                 api::response_error_line(
                     util::Status::invalid_input(parse_error)),
                 /*finish_after=*/true);
    return;
  }
  if (!admit()) return;
  if (!options_.quiet) {
    std::fprintf(stderr, "[sadp_routed] request: %zu job(s), workers=%d\n",
                 request->jobs.size(), request->workers);
  }
  std::shared_ptr<Connection> shared = conn;
  api::FlowRequest moved = std::move(*request);
  conn->runner = std::thread(
      [this, shared, request = std::move(moved)]() mutable {
        run_request(shared, std::move(request));
        shared->runner_done.store(true, std::memory_order_release);
        wake();
      });
}

void RouteServer::handle_control_line(const std::shared_ptr<Connection>& conn,
                                      const std::string& line) {
  std::string parse_error;
  const auto control = api::parse_control_request(line, &parse_error);
  if (!control) {
    enqueue_line(conn,
                 api::response_error_line(
                     util::Status::invalid_input(parse_error)),
                 /*finish_after=*/true);
    return;
  }
  switch (control->type) {
    case api::ControlRequest::Type::kPing:
      enqueue_line(conn, api::pong_line(uptime_.seconds()),
                   /*finish_after=*/true);
      return;
    case api::ControlRequest::Type::kStats:
      enqueue_line(conn, api::stats_reply_line(stats()),
                   /*finish_after=*/true);
      return;
    case api::ControlRequest::Type::kMetrics:
      // Rendering takes the registry mutex briefly; like every control
      // verb it runs on the event loop and works while the server is
      // saturated or draining.
      enqueue_line(conn, api::metrics_reply_line(obs::metrics().render()),
                   /*finish_after=*/true);
      return;
    case api::ControlRequest::Type::kDrain:
      begin_drain();
      enqueue_line(conn, api::draining_line(), /*finish_after=*/true);
      return;
    case api::ControlRequest::Type::kBeacon: {
      record_beacon(*control);
      // No reply; the sender closed (or will) without reading.
      const std::lock_guard<std::mutex> lock(conn->mutex);
      conn->finish = true;
      return;
    }
    case api::ControlRequest::Type::kFailpoint: {
      util::FailPointRegistry& registry = util::FailPointRegistry::instance();
      if (control->spec.empty()) {
        registry.clear();
      } else if (const util::Status applied =
                     registry.configure(control->spec, control->seed);
                 !applied.is_ok()) {
        enqueue_line(conn, api::response_error_line(applied),
                     /*finish_after=*/true);
        return;
      }
      if (!options_.quiet) {
        std::fprintf(stderr, "[sadp_routed] failpoints: spec='%s' armed=%zu\n",
                     control->spec.c_str(), registry.armed_count());
      }
      enqueue_line(conn, api::failpoints_line(registry.armed_count()),
                   /*finish_after=*/true);
      return;
    }
    case api::ControlRequest::Type::kSchemas: {
      api::SchemasReply schemas;
      schemas.request = api::kRequestSchema;
      schemas.response = api::kResponseSchema;
      schemas.control = api::kControlSchema;
      schemas.delta = api::kDeltaRequestSchema;
      enqueue_line(conn, api::schemas_reply_line(schemas),
                   /*finish_after=*/true);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Request runner (one thread per admitted request, bounded by max_requests)

void RouteServer::run_request(const std::shared_ptr<Connection>& conn,
                              api::FlowRequest request) {
  struct SlotGuard {
    RouteServer* server;
    ~SlotGuard() {
      server->active_.fetch_sub(1, std::memory_order_acq_rel);
      server_metrics().queue_depth.add(-1);
    }
  } slot{this};

  ServerMetrics& metrics = server_metrics();
  const std::int64_t admitted_us = util::process_uptime_us();
  metrics.admission_wait.observe_us(
      static_cast<std::uint64_t>(admitted_us - conn->line_complete_us));
  if (obs::tracing_enabled()) {
    // Cross-thread span: begun by the event loop's line-complete stamp,
    // recorded here on the runner.
    if (request.trace_id.empty()) {
      obs::complete("server.admission", conn->line_complete_us,
                    admitted_us - conn->line_complete_us);
    } else {
      obs::complete("server.admission", conn->line_complete_us,
                    admitted_us - conn->line_complete_us,
                    {{"trace_id", request.trace_id}});
    }
  }

  if (options_.on_request_admitted) options_.on_request_admitted();

  try {
    const util::Status valid = api::validate(request);
    if (!valid.is_ok()) {
      enqueue_line(conn, api::response_error_line(valid), true);
      return;
    }

    util::Timer wall;
    const std::size_t total = request.jobs.size();
    std::size_t streamed = 0;

    // Journaled batches bypass the cache: the journal is the authority for
    // --resume, and cache-served rows are never journaled, so mixing the
    // two would leave resume holes.
    const bool use_cache = cache_->enabled() && request.journal_path.empty() &&
                           !request.resume;

    std::vector<std::pair<std::size_t, CachedRow>> hits;  // job index -> row
    std::map<std::string, std::string> miss_keys;  // label -> canonical key
    api::FlowRequest misses = request;
    if (use_cache) {
      misses.jobs.clear();
      for (std::size_t i = 0; i < request.jobs.size(); ++i) {
        const api::JobRequest& job = request.jobs[i];
        const auto key = job_cache_key(job);
        if (key.has_value()) {
          if (auto row = cache_->lookup(*key)) {
            hits.emplace_back(i, std::move(*row));
            continue;
          }
          miss_keys[api::effective_label(job)] = *key;
        }
        misses.jobs.push_back(job);
      }
      metrics.cache_hits.inc(hits.size());
      metrics.cache_misses.inc(total - hits.size());
    }

    // Echoing the request's trace context onto each row needs the span id
    // by label (on_job_done only sees the outcome).  Empty map when the
    // request is untraced, so every lookup misses and rows stay untraced.
    std::map<std::string, const std::string*> span_by_label;
    if (!request.trace_id.empty()) {
      for (const api::JobRequest& job : request.jobs) {
        span_by_label[api::effective_label(job)] = &job.span_id;
      }
    }
    const auto span_for = [&](const std::string& label) -> const std::string& {
      static const std::string kEmpty;
      const auto it = span_by_label.find(label);
      return it == span_by_label.end() ? kEmpty : *it->second;
    };

    if (!hits.empty()) {
      // Materialize the full request once before replaying anything, so a
      // request with an unknown benchmark still fails with a single error
      // line instead of a half-stream.
      std::vector<engine::FlowJob> scratch;
      const util::Status materialized = api::to_flow_jobs(request, &scratch);
      if (!materialized.is_ok()) {
        enqueue_line(conn, api::response_error_line(materialized), true);
        return;
      }
    }

    std::size_t hit_ok = 0;
    std::size_t hit_degraded = 0;
    for (const auto& [index, row] : hits) {
      const api::JobRequest& job = request.jobs[index];
      (row.degraded ? hit_degraded : hit_ok)++;
      enqueue_line(conn,
                   api::response_row_line_raw(
                       replay_journal_object(row, api::effective_label(job),
                                             job.arm),
                       ++streamed, total, "hit", request.trace_id,
                       job.span_id),
                   false);
    }

    api::ResponseSummary summary;
    summary.jobs = total;
    summary.ok = hit_ok;
    summary.degraded = hit_degraded;
    summary.cache_hits = hits.size();
    summary.cache_misses = use_cache ? total - hits.size() : 0;

    if (!misses.jobs.empty()) {
      api::DispatchOptions hooks;
      hooks.cancel = conn->cancel;
      hooks.drain = drain_token_;
      hooks.executor = pool_.get();
      hooks.max_workers = pool_->size();
      const char* miss_mark = use_cache ? "miss" : nullptr;
      // on_job_done is serialized by the engine, so `streamed` needs no
      // lock; the runner itself is blocked inside dispatch() meanwhile.
      hooks.on_job_done = [&](const engine::JobOutcome& outcome, std::size_t,
                              std::size_t) {
        if (use_cache) {
          const auto key = miss_keys.find(outcome.label);
          if (key != miss_keys.end()) {
            if (auto row = make_cached_row(outcome)) {
              cache_->insert(key->second, std::move(*row));
            }
          }
        }
        if (conn->client_gone.load(std::memory_order_relaxed)) return;
        enqueue_line(conn,
                     api::response_row_line(outcome, ++streamed, total,
                                            miss_mark, request.trace_id,
                                            span_for(outcome.label)),
                     false);
      };

      const api::DispatchResult run = api::dispatch(misses, hooks);
      if (!run.status.is_ok()) {
        enqueue_line(conn, api::response_error_line(run.status), true);
        return;
      }
      if (!run.batch.journal_error.is_ok() && !options_.quiet) {
        std::fprintf(stderr, "[sadp_routed] journal error: %s\n",
                     run.batch.journal_error.to_string().c_str());
      }
      // Journal-restored rows never pass through on_job_done; stream them
      // after the executed ones so the client still receives every row
      // exactly once.
      for (const engine::JobOutcome& outcome : run.batch.outcomes) {
        if (!outcome.from_journal) continue;
        if (conn->client_gone.load(std::memory_order_relaxed)) break;
        enqueue_line(conn,
                     api::response_row_line(outcome, ++streamed, total,
                                            nullptr, request.trace_id,
                                            span_for(outcome.label)),
                     false);
      }
      summary.ok += run.batch.ok;
      summary.degraded += run.batch.degraded;
      summary.failed = run.batch.failed;
      summary.timed_out = run.batch.timed_out;
      summary.cancelled = run.batch.cancelled;
      summary.resumed = run.batch.resumed;
      summary.workers = run.workers;
    } else {
      summary.workers = capped_workers(request.workers);
    }
    summary.wall_seconds = wall.seconds();
    if (!request.trace_id.empty()) {
      summary.trace_id = request.trace_id;
      // The hop's receive instant: realtime at the moment the event loop
      // completed the request line, reconstructed from the shared process
      // clock anchor so it agrees with the admission span's start.
      summary.recv_unix_us =
          util::process_unix_anchor_us() + conn->line_complete_us;
      summary.sent_unix_us = util::unix_now_us();
    }
    const std::int64_t done_us = util::process_uptime_us();
    metrics.run.observe_us(static_cast<std::uint64_t>(done_us - admitted_us));
    if (obs::tracing_enabled()) {
      if (request.trace_id.empty()) {
        obs::complete("server.run", admitted_us, done_us - admitted_us);
      } else {
        obs::complete("server.run", admitted_us, done_us - admitted_us,
                      {{"trace_id", request.trace_id}});
      }
    }
    conn->summary_enqueued_us = done_us;
    enqueue_line(conn, api::response_summary_line(summary), true);

    if (!options_.quiet) {
      std::fprintf(stderr,
                   "[sadp_routed] batch done: ok=%zu degraded=%zu failed=%zu "
                   "timeout=%zu cancelled=%zu resumed=%zu cache=%zu/%zu "
                   "(%.2fs)\n",
                   summary.ok, summary.degraded, summary.failed,
                   summary.timed_out, summary.cancelled, summary.resumed,
                   summary.cache_hits, summary.cache_misses,
                   summary.wall_seconds);
    }
  } catch (const std::exception& e) {
    enqueue_line(conn,
                 api::response_error_line(util::Status::internal(
                     std::string("request runner: ") + e.what())),
                 true);
  }
}

void RouteServer::run_delta_request(const std::shared_ptr<Connection>& conn,
                                    api::FlowDeltaRequest request) {
  struct SlotGuard {
    RouteServer* server;
    ~SlotGuard() {
      server->active_.fetch_sub(1, std::memory_order_acq_rel);
      server_metrics().queue_depth.add(-1);
    }
  } slot{this};

  ServerMetrics& metrics = server_metrics();
  const std::int64_t admitted_us = util::process_uptime_us();
  metrics.admission_wait.observe_us(
      static_cast<std::uint64_t>(admitted_us - conn->line_complete_us));
  if (obs::tracing_enabled()) {
    if (request.trace_id.empty()) {
      obs::complete("server.admission", conn->line_complete_us,
                    admitted_us - conn->line_complete_us);
    } else {
      obs::complete("server.admission", conn->line_complete_us,
                    admitted_us - conn->line_complete_us,
                    {{"trace_id", request.trace_id}});
    }
  }

  if (options_.on_request_admitted) options_.on_request_admitted();

  try {
    const util::Status valid = api::validate_delta(request);
    if (!valid.is_ok()) {
      enqueue_line(conn, api::response_error_line(valid), true);
      return;
    }

    util::Timer wall;
    const std::string label = api::effective_label(request.base);

    // The cache key needs the base text (it is content-addressed in the
    // solution bytes), so resolve it up front; a miss re-parses inside
    // dispatch_delta, which is cheap next to the route itself.
    std::string base_text;
    if (const util::Status loaded =
            api::load_base_solution(request, &base_text);
        !loaded.is_ok()) {
      enqueue_line(conn, api::response_error_line(loaded), true);
      return;
    }
    const bool use_cache = cache_->enabled();
    const std::optional<std::string> key =
        use_cache ? api::delta_cache_key(request, base_text) : std::nullopt;

    api::ResponseSummary summary;
    summary.jobs = 1;
    summary.workers = 1;  // ECO re-routes run serially on the runner thread
    const auto finish_stream = [&] {
      summary.wall_seconds = wall.seconds();
      if (!request.trace_id.empty()) {
        summary.trace_id = request.trace_id;
        summary.recv_unix_us =
            util::process_unix_anchor_us() + conn->line_complete_us;
        summary.sent_unix_us = util::unix_now_us();
      }
      const std::int64_t done_us = util::process_uptime_us();
      metrics.run.observe_us(
          static_cast<std::uint64_t>(done_us - admitted_us));
      if (obs::tracing_enabled()) {
        if (request.trace_id.empty()) {
          obs::complete("server.run", admitted_us, done_us - admitted_us);
        } else {
          obs::complete("server.run", admitted_us, done_us - admitted_us,
                        {{"trace_id", request.trace_id}});
        }
      }
      conn->summary_enqueued_us = done_us;
      enqueue_line(conn, api::response_summary_line(summary), true);
    };

    if (key.has_value()) {
      if (auto row = cache_->lookup(*key)) {
        metrics.cache_hits.inc();
        (row->degraded ? summary.degraded : summary.ok)++;
        summary.cache_hits = 1;
        enqueue_line(conn,
                     api::response_row_line_raw(
                         replay_journal_object(*row, label, request.base.arm),
                         1, 1, "hit", request.trace_id, request.base.span_id),
                     false);
        enqueue_line(
            conn,
            api::response_delta_line_raw(row->delta_json, request.trace_id),
            false);
        finish_stream();
        return;
      }
    }
    if (use_cache) {
      metrics.cache_misses.inc();
      summary.cache_misses = 1;
    }

    api::DeltaDispatchOptions hooks;
    hooks.cancel = conn->cancel;
    const api::DeltaDispatchResult run = api::dispatch_delta(request, hooks);
    if (!run.status.is_ok()) {
      enqueue_line(conn, api::response_error_line(run.status), true);
      return;
    }

    if (key.has_value() &&
        (run.outcome.status == engine::JobStatus::kOk ||
         run.outcome.status == engine::JobStatus::kDegraded)) {
      if (auto row = make_cached_row(run.outcome)) {
        row->delta_json = api::delta_payload_suffix(run.summary);
        cache_->insert(*key, std::move(*row));
      }
    }

    switch (run.outcome.status) {
      case engine::JobStatus::kOk: summary.ok = 1; break;
      case engine::JobStatus::kDegraded: summary.degraded = 1; break;
      case engine::JobStatus::kFailed: summary.failed = 1; break;
      case engine::JobStatus::kTimeout: summary.timed_out = 1; break;
      case engine::JobStatus::kCancelled: summary.cancelled = 1; break;
    }
    if (!conn->client_gone.load(std::memory_order_relaxed)) {
      enqueue_line(conn,
                   api::response_row_line(run.outcome, 1, 1,
                                          use_cache ? "miss" : nullptr,
                                          request.trace_id,
                                          request.base.span_id),
                   false);
      enqueue_line(conn,
                   api::response_delta_line(run.summary, request.trace_id),
                   false);
    }
    finish_stream();

    if (!options_.quiet) {
      std::fprintf(stderr,
                   "[sadp_routed] delta done: ripped=%d untouched=%d "
                   "changes=%d (%.2fs)\n",
                   run.summary.nets_ripped, run.summary.nets_untouched,
                   run.summary.changes, run.wall_seconds);
    }
  } catch (const std::exception& e) {
    enqueue_line(conn,
                 api::response_error_line(util::Status::internal(
                     std::string("delta runner: ") + e.what())),
                 true);
  }
}

int RouteServer::capped_workers(int requested) const noexcept {
  int workers = requested;
  const int pool = pool_ ? pool_->size() : 0;
  if (pool > 0 && (workers == 0 || workers > pool)) workers = pool;
  return engine::FlowEngine::resolve_workers(workers);
}

// ---------------------------------------------------------------------------
// Output path

void RouteServer::enqueue_line(const std::shared_ptr<Connection>& conn,
                               const std::string& line, bool finish_after) {
  {
    const std::lock_guard<std::mutex> lock(conn->mutex);
    if (!conn->client_gone.load(std::memory_order_relaxed)) {
      conn->out += line;
      conn->out += '\n';
    }
    if (finish_after) conn->finish = true;
  }
  wake();
}

void RouteServer::flush_output(const std::shared_ptr<Connection>& conn) {
  bool want_write = false;
  bool inject_gone = false;
  std::size_t write_cap = SIZE_MAX;  // bytes per send; 1 under 'short'
  if (const util::FailDecision fail = g_fp_net_write.evaluate(); fail) {
    if (fail.kind == util::FailKind::kError) inject_gone = true;
    if (fail.kind == util::FailKind::kShort) write_cap = 1;
  }
  {
    const std::lock_guard<std::mutex> lock(conn->mutex);
    while (conn->out_pos < conn->out.size()) {
      if (inject_gone) {
        // Injected send failure: identical handling to a real EPIPE below.
        conn->client_gone.store(true, std::memory_order_release);
        conn->cancel.request_cancel();
        conn->out.clear();
        conn->out_pos = 0;
        conn->finish = true;
        break;
      }
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_pos,
                 std::min(conn->out.size() - conn->out_pos, write_cap),
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (write_cap != SIZE_MAX && n > 0) {
        // Short write injected: deliver this one byte, then yield to epoll
        // exactly as a full socket buffer would.
        conn->out_pos += static_cast<std::size_t>(n);
        want_write = conn->out_pos < conn->out.size();
        break;
      }
      if (n > 0) {
        conn->out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
        break;
      }
      // Client gone: cancel its batch and drop the rest of the stream.
      conn->client_gone.store(true, std::memory_order_release);
      conn->cancel.request_cancel();
      conn->out.clear();
      conn->out_pos = 0;
      conn->finish = true;
      break;
    }
    if (conn->out_pos == conn->out.size()) {
      conn->out.clear();
      conn->out_pos = 0;
    }
  }
  const std::uint32_t base = conn->events & ~EPOLLOUT;
  update_interest(*conn, want_write ? (base | EPOLLOUT) : base);
}

void RouteServer::update_interest(Connection& conn, std::uint32_t events) {
  if (conn.events == events || conn.fd < 0) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.events = events;
  }
}

void RouteServer::close_connection(const std::shared_ptr<Connection>& conn) {
  if (conn->runner.joinable()) conn->runner.join();
  if (conn->fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
    connections_.erase(conn->fd);
    conn->fd = -1;
    server_metrics().connections.add(-1);
    // Flush latency: summary enqueued (runner, ordered by the join/acquire
    // above) -> stream fully drained and the socket closed.
    if (conn->summary_enqueued_us > 0) {
      server_metrics().flush.observe_us(static_cast<std::uint64_t>(
          util::process_uptime_us() - conn->summary_enqueued_us));
    }
  }
}

void RouteServer::sweep_connections() {
  std::vector<std::shared_ptr<Connection>> closable;
  for (const auto& [fd, conn] : connections_) {
    flush_output(conn);
    const bool runner_pending =
        conn->runner_started &&
        !conn->runner_done.load(std::memory_order_acquire);
    if (runner_pending) continue;
    bool drained;
    bool finish;
    {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      drained = conn->out_pos == conn->out.size();
      finish = conn->finish;
    }
    if ((finish && drained) ||
        conn->client_gone.load(std::memory_order_acquire)) {
      closable.push_back(conn);
    }
  }
  for (const auto& conn : closable) close_connection(conn);
}

// ---------------------------------------------------------------------------
// Stats and beacons

api::StatsReply RouteServer::stats() const {
  api::StatsReply reply;
  reply.active = active();
  reply.queue_depth = reply.active;
  reply.rejected = rejected();
  reply.cache_hits = cache_hits();
  reply.cache_misses = cache_misses();
  reply.pool_size = pool_ ? pool_->size() : 0;
  reply.uptime_seconds = uptime_.seconds();
  reply.draining = draining();
  reply.latency_p50_ms = server_metrics().run.percentile_ms(0.5);
  reply.latency_p99_ms = server_metrics().run.percentile_ms(0.99);
  const double now = uptime_.seconds();
  const std::lock_guard<std::mutex> lock(peers_mutex_);
  for (const auto& [addr, record] : peers_) {
    api::PeerStatus peer;
    peer.addr = addr;
    peer.queue_depth = record.queue_depth;
    peer.active = record.active;
    peer.age_seconds = now - record.last_seen_uptime;
    reply.peers.push_back(std::move(peer));
  }
  return reply;
}

void RouteServer::record_beacon(const api::ControlRequest& beacon) {
  if (beacon.from.empty()) return;
  const std::lock_guard<std::mutex> lock(peers_mutex_);
  PeerRecord& record = peers_[beacon.from];
  record.queue_depth = beacon.queue_depth;
  record.active = beacon.active;
  record.last_seen_uptime = uptime_.seconds();
}

void RouteServer::beacon_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(beacon_cv_mutex_);
      beacon_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.beacon_interval_ms),
          [this] { return stopping_.load(std::memory_order_acquire); });
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    api::ControlRequest beacon;
    beacon.type = api::ControlRequest::Type::kBeacon;
    beacon.from = "127.0.0.1:" + std::to_string(port_);
    beacon.queue_depth = static_cast<int>(active());
    beacon.active = beacon.queue_depth;
    const std::string line = api::serialize_control_request(beacon);
    for (const std::string& peer : options_.beacon_peers) {
      std::string host;
      int port = 0;
      if (split_host_port(peer, &host, &port)) {
        send_oneshot_line(host, port, line);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Shutdown

void RouteServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  begin_drain();
  stopping_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) wake();
  beacon_cv_.notify_all();
  if (beacon_thread_.joinable()) beacon_thread_.join();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (pool_) pool_->shutdown();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Signal plumbing

namespace {

std::atomic<RouteServer*> g_drain_target{nullptr};

extern "C" void sadp_drain_signal_handler(int) {
  RouteServer* server = g_drain_target.load(std::memory_order_acquire);
  if (server != nullptr) server->begin_drain();
}

}  // namespace

void install_sigterm_drain(RouteServer* server) {
  g_drain_target.store(server, std::memory_order_release);
  struct sigaction action{};
  if (server != nullptr) {
    action.sa_handler = sadp_drain_signal_handler;
    sigemptyset(&action.sa_mask);
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

}  // namespace sadp::server
