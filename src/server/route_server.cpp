#include "server/route_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>

namespace sadp::server {

namespace {

util::Status errno_status(const std::string& what) {
  return util::Status::internal(what + ": " + std::strerror(errno));
}

/// Write `line` + '\n' fully; false on any send failure (client gone).
bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerPool

WorkerPool::WorkerPool(int workers) {
  const int n = engine::FlowEngine::resolve_workers(workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with an empty queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void WorkerPool::run_parallel(int tasks,
                              const std::function<void(int)>& work) {
  if (tasks <= 0) return;
  // The caller blocks below until every task ran, so capturing `work` by
  // pointer is safe.
  struct Sync {
    std::mutex mutex;
    std::condition_variable done;
    int remaining;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining = tasks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (int i = 0; i < tasks; ++i) {
      queue_.push_back([sync, &work, i] {
        work(i);
        const std::lock_guard<std::mutex> task_lock(sync->mutex);
        if (--sync->remaining == 0) sync->done.notify_all();
      });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(sync->mutex);
  sync->done.wait(lock, [&sync] { return sync->remaining == 0; });
}

void WorkerPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

// ---------------------------------------------------------------------------
// RouteServer

RouteServer::RouteServer(ServerOptions options)
    : options_(std::move(options)) {}

RouteServer::~RouteServer() { stop(); }

util::Status RouteServer::start() {
  pool_ = std::make_unique<WorkerPool>(options_.pool_workers);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return errno_status("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 16) != 0) return errno_status("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return errno_status("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
  return util::Status::ok();
}

void RouteServer::begin_drain() noexcept {
  draining_.store(true, std::memory_order_release);
  drain_token_.request_cancel();  // atomic store; signal-handler safe
}

void RouteServer::accept_loop() {
  while (!draining()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    reap_handlers(/*join_all=*/false);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (draining()) {
      ::close(fd);
      break;
    }

    // Bounded admission: beyond max_requests in flight, reject loudly
    // instead of queueing unboundedly.  The client sees a structured,
    // retryable error, not a hang.
    if (active_.load(std::memory_order_acquire) >= options_.max_requests) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      send_line(fd, api::response_error_line(util::Status::resource_exhausted(
                        "server at capacity (" +
                        std::to_string(options_.max_requests) +
                        " requests in flight); retry later")));
      ::close(fd);
      continue;
    }

    active_.fetch_add(1, std::memory_order_acq_rel);
    auto done = std::make_shared<std::atomic<bool>>(false);
    const std::lock_guard<std::mutex> lock(handlers_mutex_);
    handlers_.push_back(Handler{
        std::thread([this, fd, done] { handle_connection(fd, done); }), done});
  }
}

void RouteServer::handle_connection(
    int fd, const std::shared_ptr<std::atomic<bool>>& done) {
  struct ConnectionGuard {
    RouteServer* server;
    int fd;
    const std::shared_ptr<std::atomic<bool>>& done;
    ~ConnectionGuard() {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      server->active_.fetch_sub(1, std::memory_order_acq_rel);
      done->store(true, std::memory_order_release);
    }
  } guard{this, fd, done};

  // One request line per connection.
  std::string line;
  char chunk[4096];
  bool complete = false;
  while (!complete) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return;  // client vanished before finishing the request
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') {
        complete = true;
        break;
      }
      line.push_back(chunk[i]);
    }
    if (line.size() > options_.max_request_bytes) {
      send_line(fd, api::response_error_line(util::Status::invalid_input(
                        "request exceeds " +
                        std::to_string(options_.max_request_bytes) +
                        " bytes")));
      return;
    }
  }

  std::string parse_error;
  const auto request = api::parse_request(line, &parse_error);
  if (!request) {
    send_line(fd,
              api::response_error_line(util::Status::invalid_input(parse_error)));
    return;
  }
  if (!options_.quiet) {
    std::fprintf(stderr, "[sadp_routed] request: %zu job(s), workers=%d\n",
                 request->jobs.size(), request->workers);
  }
  if (options_.on_request_admitted) options_.on_request_admitted();

  // Client disconnect maps onto the request's cancel token: the first
  // failed row write cancels the batch's in-flight jobs cooperatively.
  const util::CancelToken cancel = util::CancelToken::cancellable();
  std::atomic<bool> client_gone{false};
  std::size_t streamed = 0;
  const std::size_t total = request->jobs.size();

  api::DispatchOptions hooks;
  hooks.cancel = cancel;
  hooks.drain = drain_token_;
  hooks.executor = pool_.get();
  hooks.max_workers = pool_->size();
  // on_job_done is serialized by the engine, so `streamed` needs no lock.
  hooks.on_job_done = [&](const engine::JobOutcome& outcome, std::size_t,
                          std::size_t) {
    if (client_gone.load(std::memory_order_relaxed)) return;
    if (!send_line(fd, api::response_row_line(outcome, ++streamed, total))) {
      client_gone.store(true, std::memory_order_relaxed);
      cancel.request_cancel();
    }
  };

  const api::DispatchResult run = api::dispatch(*request, hooks);
  if (!run.status.is_ok()) {
    send_line(fd, api::response_error_line(run.status));
    return;
  }
  if (client_gone.load(std::memory_order_relaxed)) return;

  // Journal-restored rows never pass through on_job_done; stream them after
  // the executed ones so the client still receives every row exactly once.
  for (const engine::JobOutcome& outcome : run.batch.outcomes) {
    if (!outcome.from_journal) continue;
    if (!send_line(fd, api::response_row_line(outcome, ++streamed, total))) {
      return;
    }
  }
  send_line(fd, api::response_summary_line(run.batch, run.workers,
                                           run.wall_seconds));
  if (!options_.quiet) {
    std::fprintf(stderr,
                 "[sadp_routed] batch done: ok=%zu degraded=%zu failed=%zu "
                 "timeout=%zu cancelled=%zu resumed=%zu (%.2fs)\n",
                 run.batch.ok, run.batch.degraded, run.batch.failed,
                 run.batch.timed_out, run.batch.cancelled, run.batch.resumed,
                 run.wall_seconds);
  }
}

void RouteServer::reap_handlers(bool join_all) {
  const std::lock_guard<std::mutex> lock(handlers_mutex_);
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (join_all || it->done->load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void RouteServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  begin_drain();
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_handlers(/*join_all=*/true);
  if (pool_) pool_->shutdown();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Signal plumbing

namespace {

std::atomic<RouteServer*> g_drain_target{nullptr};

extern "C" void sadp_drain_signal_handler(int) {
  RouteServer* server = g_drain_target.load(std::memory_order_acquire);
  if (server != nullptr) server->begin_drain();
}

}  // namespace

void install_sigterm_drain(RouteServer* server) {
  g_drain_target.store(server, std::memory_order_release);
  struct sigaction action{};
  if (server != nullptr) {
    action.sa_handler = sadp_drain_signal_handler;
    sigemptyset(&action.sa_mask);
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

}  // namespace sadp::server
