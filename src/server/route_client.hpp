// Client side of the sadp_routed wire protocol: connect, send one
// sadp.flow_request.v1 line, collect the streamed sadp.flow_response.v1
// lines until the server closes the connection.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "api/flow_api.hpp"
#include "engine/flow_engine.hpp"
#include "util/status.hpp"

namespace sadp::server {

/// Everything one remote batch produced, assembled from the response
/// stream.  `rows` holds the outcomes in arrival order (completion order on
/// the server, journal-restored rows last).
struct RemoteBatch {
  /// Transport/protocol failures and server "error" lines land here
  /// (e.g. kResourceExhausted when the server rejected the request).
  util::Status status;
  std::vector<engine::JobOutcome> rows;
  // Counts of the final "batch" summary line.
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t degraded = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t cancelled = 0;
  std::size_t resumed = 0;
  int workers = 0;
  double wall_seconds = 0.0;
  bool summary_received = false;

  /// Usable end-to-end: transport ok, summary seen, every row ok/degraded.
  [[nodiscard]] bool all_ok() const noexcept {
    return status.is_ok() && summary_received && failed == 0 &&
           timed_out == 0 && cancelled == 0;
  }
};

/// Run `request` against a sadp_routed instance at host:port.  Blocks until
/// the server closes the stream; `on_row` (optional) fires per received row
/// for live progress.  Connection failures, malformed response lines, and a
/// stream that ends before the batch summary all surface in `status`.
[[nodiscard]] RemoteBatch run_remote(
    const std::string& host, int port, const api::FlowRequest& request,
    const std::function<void(const engine::JobOutcome&, std::size_t done,
                             std::size_t total)>& on_row = {});

}  // namespace sadp::server
