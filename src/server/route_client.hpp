// Client side of the sadp_routed wire protocol: connect, send one
// sadp.flow_request.v1 line, collect the streamed sadp.flow_response.v1
// lines until the server closes the connection.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/control.hpp"
#include "api/flow_api.hpp"
#include "api/flow_delta.hpp"
#include "engine/flow_engine.hpp"
#include "util/status.hpp"

namespace sadp::server {

/// Everything one remote batch produced, assembled from the response
/// stream.  `rows` holds the outcomes in arrival order (completion order on
/// the server, journal-restored rows last).
struct RemoteBatch {
  /// Transport/protocol failures and server "error" lines land here
  /// (e.g. kResourceExhausted when the server rejected the request).
  util::Status status;
  std::vector<engine::JobOutcome> rows;
  /// Per-row cache marker, aligned with `rows`: "hit" / "miss" when the
  /// serving daemon consulted its result cache, "" otherwise.
  std::vector<std::string> row_cache;
  // Counts of the final "batch" summary line.
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t degraded = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t cancelled = 0;
  std::size_t resumed = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  int workers = 0;
  double wall_seconds = 0.0;
  bool summary_received = false;
  /// How many send attempts run_remote_retry used (1 = first try worked).
  int attempts = 1;
  // The "delta" summary line of an ECO (sadp.flow_delta.v1) stream;
  // delta_received stays false on plain flow batches.
  bool delta_received = false;
  int nets_ripped = 0;
  int nets_untouched = 0;
  int nets_total = 0;
  std::vector<int> ripped_ids;
  std::string base_fingerprint;

  /// Usable end-to-end: transport ok, summary seen, every row ok/degraded.
  [[nodiscard]] bool all_ok() const noexcept {
    return status.is_ok() && summary_received && failed == 0 &&
           timed_out == 0 && cancelled == 0;
  }
};

/// Run `request` against a sadp_routed instance at host:port.  Blocks until
/// the server closes the stream; `on_row` (optional) fires per received row
/// for live progress.  Connection failures, malformed response lines, and a
/// stream that ends before the batch summary all surface in `status`.
[[nodiscard]] RemoteBatch run_remote(
    const std::string& host, int port, const api::FlowRequest& request,
    const std::function<void(const engine::JobOutcome&, std::size_t done,
                             std::size_t total)>& on_row = {});

/// Bounded retry with jittered exponential backoff for transient rejection.
/// Off by default (`retries` = 0) so callers — and tests — only opt into
/// waiting.  Only a resource_exhausted error (admission bound hit, server
/// draining, no live dispatcher backend) is retried: it is the one status
/// the protocol defines as "same request, later, may succeed".  The delay
/// before attempt k is uniform in (0, min(base * 2^(k-1), max_delay)] —
/// full jitter, so a thundering herd of rejected clients decorrelates.
struct RetryOptions {
  int retries = 0;          ///< extra attempts after the first
  int base_delay_ms = 50;   ///< backoff scale for the first retry
  int max_delay_ms = 2000;  ///< backoff cap (--retry-max-ms)
  std::uint64_t seed = 0;   ///< jitter PRNG seed (deterministic per client)
};

/// run_remote plus the retry policy above; `batch.attempts` reports how
/// many tries it took.
[[nodiscard]] RemoteBatch run_remote_retry(
    const std::string& host, int port, const api::FlowRequest& request,
    const RetryOptions& retry,
    const std::function<void(const engine::JobOutcome&, std::size_t done,
                             std::size_t total)>& on_row = {});

/// Run one ECO (sadp.flow_delta.v1) request against a daemon or dispatcher.
/// Same stream contract as run_remote plus the "delta" summary line, which
/// lands in the batch's delta fields (delta_received, nets_ripped, ...).
[[nodiscard]] RemoteBatch run_remote_delta(
    const std::string& host, int port, const api::FlowDeltaRequest& request,
    const std::function<void(const engine::JobOutcome&, std::size_t done,
                             std::size_t total)>& on_row = {});

// ---------------------------------------------------------------------------
// Control-plane round trips (sadp.control.v1): one line out, one line back.

/// Send one control line and read one reply line.
[[nodiscard]] util::Status control_round_trip(const std::string& host,
                                              int port,
                                              const std::string& request_line,
                                              std::string* reply_line);

/// {"type":"stats"} → parsed StatsReply.
[[nodiscard]] util::Status query_stats(const std::string& host, int port,
                                       api::StatsReply* reply);

/// {"type":"metrics"} → the server's Prometheus text exposition (the
/// decoded `body` of the metrics reply).  Works against a daemon or a
/// dispatcher; both answer on the control plane even while saturated.
[[nodiscard]] util::Status query_metrics(const std::string& host, int port,
                                         std::string* exposition);

/// {"type":"schemas"} → the wire schemas the server speaks.  A client uses
/// this to feature-probe delta (ECO) support: reply.delta is empty when the
/// daemon predates sadp.flow_delta.v1.
[[nodiscard]] util::Status query_schemas(const std::string& host, int port,
                                         api::SchemasReply* reply);

/// {"type":"ping"} → server uptime (liveness probe).
[[nodiscard]] util::Status ping_remote(const std::string& host, int port,
                                       double* uptime_seconds = nullptr);

/// {"type":"drain"} → ask the daemon (or a whole fleet, via the
/// dispatcher) to begin graceful drain.
[[nodiscard]] util::Status drain_remote(const std::string& host, int port);

/// {"type":"failpoint","spec":...,"seed":...} → arm (or, with an empty
/// spec, clear) deterministic failpoints in a running daemon/dispatcher.
/// On success `armed` (when non-null) receives the number of armed points
/// the server reported.  See util/failpoint.hpp for the spec grammar.
[[nodiscard]] util::Status configure_failpoints_remote(
    const std::string& host, int port, const std::string& spec,
    std::uint64_t seed = 0, std::size_t* armed = nullptr);

}  // namespace sadp::server
