#include "server/route_client.hpp"

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace sadp::server {

namespace {

// Fault site (util/failpoint.hpp): drop the client's receive stream
// mid-batch, as if the server vanished.
util::FailPoint g_fp_client_recv("client.recv");

int connect_to(const std::string& host, int port, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &found);
  if (rc != 0) {
    *error = "cannot resolve " + host + ": " + ::gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    *error = "cannot connect to " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

namespace {

/// Shared body of run_remote / run_remote_delta: send one pre-serialized
/// request line, consume the response stream until the server closes.
RemoteBatch run_stream(
    const std::string& host, int port, const std::string& request_line,
    const std::function<void(const engine::JobOutcome&, std::size_t done,
                             std::size_t total)>& on_row) {
  RemoteBatch batch;
  std::string error;
  const int fd = connect_to(host, port, &error);
  if (fd < 0) {
    batch.status = util::Status::internal(error);
    return batch;
  }

  if (!send_all(fd, request_line + "\n")) {
    batch.status = util::Status::internal("send failed: " +
                                          std::string(std::strerror(errno)));
    ::close(fd);
    return batch;
  }

  std::string buffer;
  char chunk[4096];
  auto consume_line = [&](std::string_view line) {
    if (line.empty()) return;
    std::string parse_error;
    auto event = api::parse_response_line(line, &parse_error);
    if (!event) {
      if (batch.status.is_ok()) {
        batch.status = util::Status::internal("bad response line: " +
                                              parse_error);
      }
      return;
    }
    switch (event->kind) {
      case api::ResponseEvent::Kind::kRow:
        if (on_row) on_row(event->outcome, event->done, event->total);
        batch.rows.push_back(std::move(event->outcome));
        batch.row_cache.push_back(std::move(event->cache));
        break;
      case api::ResponseEvent::Kind::kBatch:
        batch.jobs = event->jobs;
        batch.ok = event->ok;
        batch.degraded = event->degraded;
        batch.failed = event->failed;
        batch.timed_out = event->timed_out;
        batch.cancelled = event->cancelled;
        batch.resumed = event->resumed;
        batch.cache_hits = event->cache_hits;
        batch.cache_misses = event->cache_misses;
        batch.workers = event->workers;
        batch.wall_seconds = event->wall_seconds;
        batch.summary_received = true;
        break;
      case api::ResponseEvent::Kind::kDelta:
        batch.delta_received = true;
        batch.nets_ripped = event->nets_ripped;
        batch.nets_untouched = event->nets_untouched;
        batch.nets_total = event->nets_total;
        batch.ripped_ids = std::move(event->ripped_ids);
        batch.base_fingerprint = std::move(event->base_fingerprint);
        break;
      case api::ResponseEvent::Kind::kError:
        batch.status = event->error;
        break;
    }
  };

  for (;;) {
    if (g_fp_client_recv.evaluate().kind == util::FailKind::kError) {
      break;  // injected dropped stream: same handling as a server crash
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      consume_line(std::string_view(buffer).substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  ::close(fd);

  if (!buffer.empty()) consume_line(buffer);  // unterminated trailing line
  if (batch.status.is_ok() && !batch.summary_received) {
    batch.status = util::Status::internal(
        "connection closed before the batch summary (server died?)");
  }
  return batch;
}

}  // namespace

RemoteBatch run_remote(
    const std::string& host, int port, const api::FlowRequest& request,
    const std::function<void(const engine::JobOutcome&, std::size_t done,
                             std::size_t total)>& on_row) {
  return run_stream(host, port, api::serialize_request(request), on_row);
}

RemoteBatch run_remote_delta(
    const std::string& host, int port, const api::FlowDeltaRequest& request,
    const std::function<void(const engine::JobOutcome&, std::size_t done,
                             std::size_t total)>& on_row) {
  return run_stream(host, port, api::serialize_delta_request(request), on_row);
}

RemoteBatch run_remote_retry(
    const std::string& host, int port, const api::FlowRequest& request,
    const RetryOptions& retry,
    const std::function<void(const engine::JobOutcome&, std::size_t done,
                             std::size_t total)>& on_row) {
  util::Xoshiro256StarStar jitter(retry.seed != 0 ? retry.seed : 0x5adbull);
  RemoteBatch batch;
  for (int attempt = 0;; ++attempt) {
    batch = run_remote(host, port, request, on_row);
    batch.attempts = attempt + 1;
    if (batch.status.code() != util::StatusCode::kResourceExhausted ||
        attempt >= retry.retries) {
      return batch;
    }
    // Full-jitter exponential backoff: uniform in (0, min(base*2^k, cap)].
    double ceiling_ms = static_cast<double>(retry.base_delay_ms);
    for (int k = 0; k < attempt && ceiling_ms < retry.max_delay_ms; ++k) {
      ceiling_ms *= 2.0;
    }
    if (ceiling_ms > retry.max_delay_ms) {
      ceiling_ms = static_cast<double>(retry.max_delay_ms);
    }
    const double delay_ms = jitter.uniform() * ceiling_ms;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long>(delay_ms * 1000.0) + 1));
  }
}

// ---------------------------------------------------------------------------
// Control round trips

util::Status control_round_trip(const std::string& host, int port,
                                const std::string& request_line,
                                std::string* reply_line) {
  std::string error;
  const int fd = connect_to(host, port, &error);
  if (fd < 0) return util::Status::internal(error);
  if (!send_all(fd, request_line + "\n")) {
    ::close(fd);
    return util::Status::internal("send failed: " +
                                  std::string(std::strerror(errno)));
  }
  reply_line->clear();
  char chunk[4096];
  bool complete = false;
  while (!complete) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') {
        complete = true;
        break;
      }
      reply_line->push_back(chunk[i]);
    }
  }
  ::close(fd);
  if (!complete) {
    return util::Status::internal("connection closed before a control reply");
  }
  return util::Status::ok();
}

util::Status query_stats(const std::string& host, int port,
                         api::StatsReply* reply) {
  api::ControlRequest request;
  request.type = api::ControlRequest::Type::kStats;
  std::string line;
  const util::Status sent = control_round_trip(
      host, port, api::serialize_control_request(request), &line);
  if (!sent.is_ok()) return sent;
  std::string error;
  const auto stats = api::parse_stats_reply(line, &error);
  if (!stats) return util::Status::internal("bad stats reply: " + error);
  *reply = *stats;
  return util::Status::ok();
}

util::Status query_schemas(const std::string& host, int port,
                           api::SchemasReply* reply) {
  api::ControlRequest request;
  request.type = api::ControlRequest::Type::kSchemas;
  std::string line;
  const util::Status sent = control_round_trip(
      host, port, api::serialize_control_request(request), &line);
  if (!sent.is_ok()) return sent;
  std::string error;
  const auto schemas = api::parse_schemas_reply(line, &error);
  if (!schemas) return util::Status::internal("bad schemas reply: " + error);
  *reply = *schemas;
  return util::Status::ok();
}

util::Status query_metrics(const std::string& host, int port,
                           std::string* exposition) {
  api::ControlRequest request;
  request.type = api::ControlRequest::Type::kMetrics;
  std::string line;
  const util::Status sent = control_round_trip(
      host, port, api::serialize_control_request(request), &line);
  if (!sent.is_ok()) return sent;
  std::string error;
  const auto body = api::parse_metrics_reply(line, &error);
  if (!body) return util::Status::internal("bad metrics reply: " + error);
  *exposition = *body;
  return util::Status::ok();
}

util::Status ping_remote(const std::string& host, int port,
                         double* uptime_seconds) {
  api::ControlRequest request;
  request.type = api::ControlRequest::Type::kPing;
  std::string line;
  const util::Status sent = control_round_trip(
      host, port, api::serialize_control_request(request), &line);
  if (!sent.is_ok()) return sent;
  if (line.find("\"type\":\"pong\"") == std::string::npos) {
    return util::Status::internal("unexpected ping reply: " + line);
  }
  if (uptime_seconds != nullptr) {
    const std::size_t at = line.find("\"uptime_seconds\":");
    *uptime_seconds =
        at == std::string::npos
            ? 0.0
            : std::strtod(line.c_str() + at + sizeof("\"uptime_seconds\":") - 1,
                          nullptr);
  }
  return util::Status::ok();
}

util::Status drain_remote(const std::string& host, int port) {
  api::ControlRequest request;
  request.type = api::ControlRequest::Type::kDrain;
  std::string line;
  const util::Status sent = control_round_trip(
      host, port, api::serialize_control_request(request), &line);
  if (!sent.is_ok()) return sent;
  if (line.find("\"type\":\"draining\"") == std::string::npos) {
    return util::Status::internal("unexpected drain reply: " + line);
  }
  return util::Status::ok();
}

util::Status configure_failpoints_remote(const std::string& host, int port,
                                         const std::string& spec,
                                         std::uint64_t seed,
                                         std::size_t* armed) {
  api::ControlRequest request;
  request.type = api::ControlRequest::Type::kFailpoint;
  request.spec = spec;
  request.seed = seed;
  std::string line;
  const util::Status sent = control_round_trip(
      host, port, api::serialize_control_request(request), &line);
  if (!sent.is_ok()) return sent;
  if (line.find("\"type\":\"failpoints\"") == std::string::npos) {
    // The server replies with a structured error line on a malformed spec.
    return util::Status::invalid_input("failpoint request rejected: " + line);
  }
  if (armed != nullptr) {
    const std::size_t at = line.find("\"armed\":");
    *armed = at == std::string::npos
                 ? 0u
                 : static_cast<std::size_t>(std::strtoull(
                       line.c_str() + at + sizeof("\"armed\":") - 1, nullptr,
                       10));
  }
  return util::Status::ok();
}

}  // namespace sadp::server
