#include "server/route_client.hpp"

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace sadp::server {

namespace {

int connect_to(const std::string& host, int port, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &found);
  if (rc != 0) {
    *error = "cannot resolve " + host + ": " + ::gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    *error = "cannot connect to " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

RemoteBatch run_remote(
    const std::string& host, int port, const api::FlowRequest& request,
    const std::function<void(const engine::JobOutcome&, std::size_t done,
                             std::size_t total)>& on_row) {
  RemoteBatch batch;
  std::string error;
  const int fd = connect_to(host, port, &error);
  if (fd < 0) {
    batch.status = util::Status::internal(error);
    return batch;
  }

  if (!send_all(fd, api::serialize_request(request) + "\n")) {
    batch.status = util::Status::internal("send failed: " +
                                          std::string(std::strerror(errno)));
    ::close(fd);
    return batch;
  }

  std::string buffer;
  char chunk[4096];
  auto consume_line = [&](std::string_view line) {
    if (line.empty()) return;
    std::string parse_error;
    auto event = api::parse_response_line(line, &parse_error);
    if (!event) {
      if (batch.status.is_ok()) {
        batch.status = util::Status::internal("bad response line: " +
                                              parse_error);
      }
      return;
    }
    switch (event->kind) {
      case api::ResponseEvent::Kind::kRow:
        if (on_row) on_row(event->outcome, event->done, event->total);
        batch.rows.push_back(std::move(event->outcome));
        break;
      case api::ResponseEvent::Kind::kBatch:
        batch.jobs = event->jobs;
        batch.ok = event->ok;
        batch.degraded = event->degraded;
        batch.failed = event->failed;
        batch.timed_out = event->timed_out;
        batch.cancelled = event->cancelled;
        batch.resumed = event->resumed;
        batch.workers = event->workers;
        batch.wall_seconds = event->wall_seconds;
        batch.summary_received = true;
        break;
      case api::ResponseEvent::Kind::kError:
        batch.status = event->error;
        break;
    }
  };

  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      consume_line(std::string_view(buffer).substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  ::close(fd);

  if (!buffer.empty()) consume_line(buffer);  // unterminated trailing line
  if (batch.status.is_ok() && !batch.summary_received) {
    batch.status = util::Status::internal(
        "connection closed before the batch summary (server died?)");
  }
  return batch;
}

}  // namespace sadp::server
