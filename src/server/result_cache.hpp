// Content-addressed result cache of the routing service.
//
// Rows are deterministic: a job described by a benchmark name or an inline
// generator spec produces bit-identical sadp.flow_journal.v1 records on
// every run (the generator PRNG is seeded from the spec and solver
// deadlines are charged against per-thread CPU time).  That makes repeated
// requests byte-replayable — the cache stores the serialized journal
// object of a finished job, keyed by a canonical hash of the job itself,
// and a hit replays those bytes without touching the worker pool.
//
// Key normalization (canonical_job_json): the job is re-serialized with
// the members in sorted order and every default materialized, so two
// requests that differ only in member order, omitted defaults, or
// display/execution fields address the same entry.  Excluded from the key:
//   * label / arm          — display and journal keys; they never change
//                            the routed result (the stored record's
//                            label/arm are rewritten on replay);
//   * workers / journal / resume / keep_going / batch_deadline — batch
//                            execution policy; rows are proven
//                            bit-identical at any worker count, and only
//                            ok/degraded rows are cached so fail-fast and
//                            batch-deadline statuses cannot leak in.
// Uncacheable jobs (job_cache_key returns nullopt):
//   * netlist_path sources — the file's content is not part of the key, so
//                            an edit on disk would serve stale rows;
//   * deadline_seconds > 0 — wall-deadline rows are inherently
//                            non-deterministic (kTimeout depends on load).
//
// Replay byte-identity: the stored value is the journal object MINUS its
// fixed prefix ({"schema":...,"from_journal":false,"label":...,"arm":...,)
// which is re-synthesized with the requesting job's label/arm.  For the
// same request the rebuilt line is byte-identical to the line a fresh
// execution would stream (including the recorded timing fields — a hit
// reports the original run's timings, which is what "replay" means).
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "api/flow_api.hpp"
#include "engine/flow_engine.hpp"

namespace sadp::server {

/// The canonical (sorted-keys, defaults-materialized) serialization of the
/// flow-affecting fields of one job.  This string IS the cache address —
/// keying by the full canonical form instead of its hash makes collisions
/// impossible; the 64-bit FNV-1a of it (cache_key_id) is only a compact
/// identifier for logs and traces.
[[nodiscard]] std::string canonical_job_json(const api::JobRequest& job);

/// The cache key of a job, or nullopt when the job must not be cached
/// (netlist_path source, nonzero wall deadline).
[[nodiscard]] std::optional<std::string> job_cache_key(
    const api::JobRequest& job);

/// Compact hex id of a canonical key, for logging.
[[nodiscard]] std::string cache_key_id(const std::string& canonical_key);

/// One cached row: the journal object with the label/arm prefix stripped,
/// plus the bits of bookkeeping a replay needs to update the batch summary.
struct CachedRow {
  std::string suffix;      ///< journal-object bytes from "status" onward
  bool degraded = false;   ///< kDegraded (vs kOk) — for summary counts
  /// ECO entries only: the delta-line payload (bytes from "nets_ripped"
  /// onward, see api::delta_payload_suffix), replayed as the "delta" line
  /// that follows the row.  Empty for flow rows.
  std::string delta_json;
};

/// Build the journal-object prefix for a label/arm pair; a stored suffix
/// appended to it reconstructs a full sadp.flow_journal.v1 object.
[[nodiscard]] std::string journal_object_prefix(const std::string& label,
                                                const std::string& arm);

/// Split a freshly serialized journal line into prefix + suffix; nullopt
/// when the line does not start with the expected prefix (format drift —
/// the caller must then skip caching rather than ever replay wrong bytes).
[[nodiscard]] std::optional<CachedRow> make_cached_row(
    const engine::JobOutcome& outcome);

/// Reconstruct the full journal object of a cached row under the
/// requesting job's label/arm.
[[nodiscard]] std::string replay_journal_object(const CachedRow& row,
                                                const std::string& label,
                                                const std::string& arm);

/// Bounded, thread-safe LRU map from canonical job key to cached row.
/// lookup() counts a hit or a miss; insert() of an existing key refreshes
/// recency.  Only ok/degraded rows should ever be inserted.
class ResultCache {
 public:
  /// `capacity` = max entries; 0 disables the cache (lookup always misses
  /// without counting, insert is a no-op).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }

  /// Returns the cached row and counts a hit; nullopt counts a miss.
  [[nodiscard]] std::optional<CachedRow> lookup(const std::string& key);

  void insert(const std::string& key, CachedRow row);

  [[nodiscard]] std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  /// MRU-first recency list; the map stores list iterators for O(1) bump.
  std::list<std::pair<std::string, CachedRow>> entries_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, CachedRow>>::iterator>
      index_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace sadp::server
