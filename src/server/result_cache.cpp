#include "server/result_cache.hpp"

#include <cstdio>

#include "engine/journal.hpp"
#include "grid/colored_grid.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace sadp::server {

namespace {
// Fault sites (util/failpoint.hpp): a cache that loses lookups or drops
// inserts must only cost recomputation, never change a row.
util::FailPoint g_fp_cache_lookup("cache.lookup");
util::FailPoint g_fp_cache_insert("cache.insert");
}  // namespace

std::string canonical_job_json(const api::JobRequest& job) {
  // Members in sorted order, every default materialized.  Serializing
  // through JsonWriter keeps number/string formatting identical to the
  // wire schema, so this form is stable as long as the writer is.
  util::JsonWriter json;
  json.begin_object();
  json.key("benchmark").value(job.benchmark);
  json.key("consider_dvi").value(job.consider_dvi);
  json.key("consider_tpl").value(job.consider_tpl);
  json.key("degrade_dvi").value(job.degrade_dvi);
  json.key("dvi_method").value(core::dvi_method_name(job.dvi_method));
  json.key("ilp_limit").value(job.ilp_limit_seconds);
  json.key("netlist_path").value(job.netlist_path);
  json.key("partitions").value(job.partitions);
  json.key("scaled").value(job.scaled);
  if (job.spec.has_value()) {
    const netlist::BenchSpec& spec = *job.spec;
    json.key("spec").begin_object();
    json.key("global_net_fraction").value(spec.global_net_fraction);
    json.key("height").value(spec.height);
    json.key("local_radius").value(spec.local_radius);
    json.key("min_pin_spacing").value(spec.min_pin_spacing);
    json.key("name").value(spec.name);
    json.key("num_metal_layers").value(spec.num_metal_layers);
    json.key("num_nets").value(spec.num_nets);
    json.key("row_pitch").value(spec.row_pitch);
    json.key("row_structured").value(spec.row_structured);
    json.key("scale").value(spec.scale);
    json.key("seed").value(static_cast<long long>(spec.seed));
    json.key("width").value(spec.width);
    json.end_object();
  } else {
    json.key("spec").value("");
  }
  json.key("style").value(grid::style_name(job.style));
  json.end_object();
  return json.str();
}

std::optional<std::string> job_cache_key(const api::JobRequest& job) {
  // File-backed jobs hash the path, not the content — an edit on disk
  // would silently serve stale rows, so they are never cached.  Jobs with
  // a wall deadline can time out depending on machine load, which breaks
  // the bit-identical-replay contract.
  if (!job.netlist_path.empty()) return std::nullopt;
  if (job.deadline_seconds > 0.0) return std::nullopt;
  return canonical_job_json(job);
}

std::string cache_key_id(const std::string& canonical_key) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(util::fnv1a(canonical_key)));
  return buffer;
}

std::string journal_object_prefix(const std::string& label,
                                  const std::string& arm) {
  std::string prefix = "{\"schema\":\"";
  prefix += engine::kJournalSchema;
  prefix += "\",\"from_journal\":false,\"label\":\"";
  prefix += util::JsonWriter::escape(label);
  prefix += "\",\"arm\":\"";
  prefix += util::JsonWriter::escape(arm);
  prefix += "\",";
  return prefix;
}

std::optional<CachedRow> make_cached_row(const engine::JobOutcome& outcome) {
  if (!outcome.ok() || outcome.from_journal) return std::nullopt;
  const std::string line = engine::journal_line(outcome);
  const std::string prefix =
      journal_object_prefix(outcome.label, outcome.arm);
  if (line.compare(0, prefix.size(), prefix) != 0) {
    // Journal format drift: better an eternal miss than a wrong replay.
    return std::nullopt;
  }
  CachedRow row;
  row.suffix = line.substr(prefix.size());
  row.degraded = outcome.status == engine::JobStatus::kDegraded;
  return row;
}

std::string replay_journal_object(const CachedRow& row,
                                  const std::string& label,
                                  const std::string& arm) {
  return journal_object_prefix(label, arm) + row.suffix;
}

std::optional<CachedRow> ResultCache::lookup(const std::string& key) {
  if (capacity_ == 0) return std::nullopt;
  if (g_fp_cache_lookup.evaluate().kind == util::FailKind::kError) {
    // Injected miss: the job recomputes; the row must come out identical.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, it->second);  // bump to MRU
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ResultCache::insert(const std::string& key, CachedRow row) {
  if (capacity_ == 0) return;
  if (g_fp_cache_insert.evaluate().kind == util::FailKind::kError) {
    return;  // injected dropped insert: future lookups simply miss
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(row);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.emplace_front(key, std::move(row));
  index_.emplace(key, entries_.begin());
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
  }
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace sadp::server
