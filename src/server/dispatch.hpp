// Multi-daemon front: sadp_route_dispatch accepts the same wire dialects
// as sadp_routed and forwards each flow request to the least-loaded live
// backend.
//
// The dispatcher holds no routing state of its own.  A probe thread sends
// {"type":"stats"} to every configured backend on a fixed cadence and
// records the advertised queue depth; a backend whose last successful
// probe is older than `stale_after_ms` is considered dead and routed
// around.  Backend selection picks the live backend with the smallest
// advertised queue depth (ties broken by fewest requests forwarded so
// far); backends that have never answered a probe are still tried last,
// so the fleet works during the first probe cycle.
//
// Failover rule: a forwarded request may be retried on another backend
// only while ZERO response bytes have been relayed to the client.  Once
// the first byte is through, the dispatcher is committed — replaying a
// half-streamed batch elsewhere would duplicate rows.  A backend that is
// SIGKILLed therefore fails over transparently for every request it had
// not yet started answering, and requests it was mid-stream on surface as
// a truncated stream to that one client.
//
// Control lines are answered by the dispatcher itself: "ping" with its
// own uptime, "stats" with fleet-aggregated depth plus one peer row per
// backend (alive flag from probe age), "drain" by forwarding the drain to
// every backend.  The front is intentionally tiny — one thread per client
// connection is fine here because connections only live for one request.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/control.hpp"
#include "obs/metrics.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace sadp::server {

struct DispatcherOptions {
  /// TCP port on 127.0.0.1; 0 = ephemeral.
  int port = 0;
  /// Backend daemons ("host:port").  At least one is required.
  std::vector<std::string> backends;
  int probe_interval_ms = 200;
  /// A backend whose last successful probe is older than this is dead.
  int stale_after_ms = 1000;
  /// Send/receive timeout on probe and drain fan-out sockets.  A wedged
  /// (e.g. SIGSTOPped) backend then shows up as a timed-out probe — stale,
  /// routed around — instead of stalling the probe loop forever.  Never
  /// applied to the forward relay, where a slow batch is legitimate.
  int probe_timeout_ms = 500;
  std::size_t max_request_bytes = 16u << 20;
  bool quiet = false;
};

/// One backend's state as seen by the dispatcher (for stats and tests).
struct BackendSnapshot {
  std::string addr;
  bool alive = false;
  int queue_depth = 0;
  double probe_age_seconds = 0.0;
  std::size_t forwarded = 0;
};

class RouteDispatcher {
 public:
  explicit RouteDispatcher(DispatcherOptions options);
  ~RouteDispatcher();

  RouteDispatcher(const RouteDispatcher&) = delete;
  RouteDispatcher& operator=(const RouteDispatcher&) = delete;

  [[nodiscard]] util::Status start();
  [[nodiscard]] int port() const noexcept { return port_; }
  void stop();

  /// Requests that were retried on another backend after a dead first pick.
  [[nodiscard]] std::size_t failovers() const noexcept {
    return failovers_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::vector<BackendSnapshot> backends() const;

 private:
  struct Backend {
    std::string addr;
    std::string host;
    int port = 0;
    double last_good_probe = -1.0;  ///< uptime seconds; <0 = never answered
    int queue_depth = 0;
    /// The backend advertised draining=true on its last probe.  It still
    /// answers control verbs (scrapes, stats) but rejects new flow
    /// requests, so selection tries it only after every other option.
    bool draining = false;
    std::size_t forwarded = 0;
    /// Relay latency for this backend
    /// (sadp_dispatch_relay_seconds{backend="addr"}); registered in
    /// start(), stable for the life of the process.
    obs::LatencyHistogram* relay_latency = nullptr;
  };

  void probe_loop();
  void accept_loop();
  void handle_client(int fd);
  void handle_control(int fd, const std::string& line);
  /// Forward one request line; returns true once >=1 byte reached the
  /// client (committed), false when the backend produced nothing.
  /// `trace_id` (empty = untraced) only annotates the relay span.
  bool forward_to(std::size_t backend_index, const std::string& line,
                  int client_fd, const std::string& trace_id);
  [[nodiscard]] bool backend_alive(const Backend& backend) const;
  /// Try order: live backends by ascending advertised depth, then
  /// never-probed/stale ones in configuration order, then draining ones.
  [[nodiscard]] std::vector<std::size_t> pick_order() const;
  [[nodiscard]] api::StatsReply fleet_stats() const;

  DispatcherOptions options_;
  util::Timer uptime_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::thread probe_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> failovers_{0};

  mutable std::mutex backends_mutex_;
  std::vector<Backend> backends_;

  std::mutex probe_cv_mutex_;
  std::condition_variable probe_cv_;

  /// Detached handler threads, tracked as a waitgroup so stop() can block
  /// until the last one finished.
  std::mutex handlers_mutex_;
  std::condition_variable handlers_cv_;
  int handler_count_ = 0;

  bool stopped_ = false;
};

}  // namespace sadp::server
