#include "server/dispatch.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "api/flow_api.hpp"
#include "api/flow_delta.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace sadp::server {

namespace {

// Fault sites (util/failpoint.hpp).  Zero-cost unless armed.
util::FailPoint g_fp_dispatch_connect("dispatch.connect");
util::FailPoint g_fp_dispatch_relay("dispatch.relay");

/// Process-global dispatcher metrics (obs/metrics.hpp); the per-backend
/// relay histograms are registered in start() because their label is the
/// backend address.
struct DispatchMetrics {
  obs::Counter& failovers;
  obs::Counter& stale_probes;
};

DispatchMetrics& dispatch_metrics() {
  static DispatchMetrics m{
      obs::metrics().counter(
          "sadp_dispatch_failovers_total",
          "Requests retried on another backend after a dead first pick."),
      obs::metrics().counter(
          "sadp_dispatch_stale_probes_total",
          "Backend probes that failed (connect, send, or bad stats reply)."),
  };
  return m;
}

bool split_host_port(const std::string& addr, std::string* host, int* port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 >= addr.size()) return false;
  *host = addr.substr(0, colon);
  try {
    *port = std::stoi(addr.substr(colon + 1));
  } catch (...) {
    return false;
  }
  return *port > 0 && *port < 65536;
}

/// Connect to a backend.  timeout_ms > 0 arms SO_RCVTIMEO/SO_SNDTIMEO
/// before connecting (on Linux SO_SNDTIMEO also bounds connect()), so a
/// wedged peer turns into a timed-out syscall instead of an infinite block.
int connect_backend(const std::string& host, int port, int timeout_ms = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_line(int fd, const std::string& line) {
  const std::string framed = line + "\n";
  return send_all(fd, framed.data(), framed.size());
}

/// Blocking read of one '\n'-terminated line (cap enforced by the caller's
/// loop); returns false on EOF/error before the newline.
bool read_line(int fd, std::size_t max_bytes, std::string* line) {
  line->clear();
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') return true;
      line->push_back(chunk[i]);
    }
    if (line->size() > max_bytes) return false;
  }
}

}  // namespace

RouteDispatcher::RouteDispatcher(DispatcherOptions options)
    : options_(std::move(options)) {}

RouteDispatcher::~RouteDispatcher() { stop(); }

util::Status RouteDispatcher::start() {
  if (options_.backends.empty()) {
    return util::Status::invalid_input("dispatcher needs at least one backend");
  }
  for (const std::string& addr : options_.backends) {
    Backend backend;
    backend.addr = addr;
    if (!split_host_port(addr, &backend.host, &backend.port)) {
      return util::Status::invalid_input("bad backend address: " + addr);
    }
    backend.relay_latency = &obs::metrics().histogram(
        "sadp_dispatch_relay_seconds",
        "Committed request relay latency per backend (connect to last byte).",
        "backend=\"" + addr + "\"");
    backends_.push_back(std::move(backend));
  }
  uptime_.reset();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    return util::Status::internal(std::string("bind/listen: ") +
                                  std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  probe_thread_ = std::thread([this] { probe_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  return util::Status::ok();
}

void RouteDispatcher::stop() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  probe_cv_.notify_all();
  if (listen_fd_ >= 0) {
    // shutdown() unblocks the accept loop even on Linuxes where close()
    // alone leaves accept() sleeping.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (probe_thread_.joinable()) probe_thread_.join();
  std::unique_lock<std::mutex> lock(handlers_mutex_);
  handlers_cv_.wait(lock, [this] { return handler_count_ == 0; });
}

// ---------------------------------------------------------------------------
// Probing

void RouteDispatcher::probe_loop() {
  for (;;) {
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      std::string host;
      int port = 0;
      {
        const std::lock_guard<std::mutex> lock(backends_mutex_);
        host = backends_[i].host;
        port = backends_[i].port;
      }
      const int fd = connect_backend(host, port, options_.probe_timeout_ms);
      if (fd < 0) {
        dispatch_metrics().stale_probes.inc();
        continue;
      }
      api::ControlRequest probe;
      probe.type = api::ControlRequest::Type::kStats;
      std::string reply;
      bool good = send_line(fd, api::serialize_control_request(probe)) &&
                  read_line(fd, 1u << 20, &reply);
      ::close(fd);
      if (!good) {
        dispatch_metrics().stale_probes.inc();
        continue;
      }
      const auto stats = api::parse_stats_reply(reply);
      if (!stats) {
        dispatch_metrics().stale_probes.inc();
        continue;
      }
      const std::lock_guard<std::mutex> lock(backends_mutex_);
      backends_[i].last_good_probe = uptime_.seconds();
      backends_[i].queue_depth = static_cast<int>(stats->queue_depth);
      backends_[i].draining = stats->draining;
    }
    std::unique_lock<std::mutex> lock(probe_cv_mutex_);
    probe_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.probe_interval_ms),
                       [this] {
                         return stopping_.load(std::memory_order_acquire);
                       });
    if (stopping_.load(std::memory_order_acquire)) return;
  }
}

bool RouteDispatcher::backend_alive(const Backend& backend) const {
  if (backend.last_good_probe < 0.0) return false;
  const double age = uptime_.seconds() - backend.last_good_probe;
  return age * 1000.0 <= static_cast<double>(options_.stale_after_ms);
}

std::vector<std::size_t> RouteDispatcher::pick_order() const {
  const std::lock_guard<std::mutex> lock(backends_mutex_);
  std::vector<std::size_t> alive;
  std::vector<std::size_t> unknown;
  std::vector<std::size_t> draining;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (!backend_alive(backends_[i])) {
      unknown.push_back(i);
    } else if (backends_[i].draining) {
      // Still answering probes, but rejecting flow requests: last resort
      // only (a forward there comes back as a structured draining error).
      draining.push_back(i);
    } else {
      alive.push_back(i);
    }
  }
  std::stable_sort(alive.begin(), alive.end(),
                   [this](std::size_t a, std::size_t b) {
                     if (backends_[a].queue_depth != backends_[b].queue_depth) {
                       return backends_[a].queue_depth <
                              backends_[b].queue_depth;
                     }
                     return backends_[a].forwarded < backends_[b].forwarded;
                   });
  alive.insert(alive.end(), unknown.begin(), unknown.end());
  alive.insert(alive.end(), draining.begin(), draining.end());
  return alive;
}

std::vector<BackendSnapshot> RouteDispatcher::backends() const {
  const std::lock_guard<std::mutex> lock(backends_mutex_);
  std::vector<BackendSnapshot> out;
  for (const Backend& backend : backends_) {
    BackendSnapshot snap;
    snap.addr = backend.addr;
    snap.alive = backend_alive(backend);
    snap.queue_depth = backend.queue_depth;
    snap.probe_age_seconds = backend.last_good_probe < 0.0
                                 ? -1.0
                                 : uptime_.seconds() - backend.last_good_probe;
    snap.forwarded = backend.forwarded;
    out.push_back(std::move(snap));
  }
  return out;
}

api::StatsReply RouteDispatcher::fleet_stats() const {
  api::StatsReply reply;
  reply.uptime_seconds = uptime_.seconds();
  const std::lock_guard<std::mutex> lock(backends_mutex_);
  // Fleet relay latency: merge the per-backend histograms (log2 bins merge
  // exactly) and report the combined quantiles.
  util::Histogram relay;
  for (const Backend& backend : backends_) {
    if (backend.relay_latency != nullptr) {
      relay.merge(backend.relay_latency->snapshot().hist);
    }
  }
  reply.latency_p50_ms = static_cast<double>(relay.percentile(0.5)) / 1e3;
  reply.latency_p99_ms = static_cast<double>(relay.percentile(0.99)) / 1e3;
  for (const Backend& backend : backends_) {
    api::PeerStatus peer;
    peer.addr = backend.addr;
    peer.queue_depth = backend.queue_depth;
    peer.active = backend.queue_depth;
    peer.alive = backend_alive(backend);
    peer.age_seconds = backend.last_good_probe < 0.0
                           ? -1.0
                           : uptime_.seconds() - backend.last_good_probe;
    if (peer.alive) {
      reply.queue_depth += static_cast<std::size_t>(backend.queue_depth);
      reply.active += static_cast<std::size_t>(backend.queue_depth);
    }
    reply.peers.push_back(std::move(peer));
  }
  return reply;
}

// ---------------------------------------------------------------------------
// Client handling

void RouteDispatcher::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(handlers_mutex_);
      ++handler_count_;
    }
    std::thread([this, fd] {
      handle_client(fd);
      ::close(fd);
      // Decrement + notify under the mutex so stop()'s wait cannot miss
      // the last handler; nothing of *this is touched afterwards.
      const std::lock_guard<std::mutex> lock(handlers_mutex_);
      --handler_count_;
      handlers_cv_.notify_all();
    }).detach();
  }
}

void RouteDispatcher::handle_client(int fd) {
  std::string line;
  if (!read_line(fd, options_.max_request_bytes, &line)) return;

  if (api::looks_like_control_line(line)) {
    handle_control(fd, line);
    return;
  }

  // The dispatcher is the trace root for the fleet: mint a trace_id (plus
  // per-job span_ids and the send timestamp) on requests that carry none,
  // and forward the re-serialized line.  A request that already has a
  // trace_id keeps it (the client owns the trace), and an unparseable line
  // is forwarded verbatim — the backend produces the real error, exactly
  // as before trace propagation existed.
  std::string trace_id;
  if (api::looks_like_delta_line(line)) {
    // ECO requests relay exactly like flow requests: same backend order,
    // failover and trace framing; only the trace-minting step differs.
    if (auto delta = api::parse_delta_request(line)) {
      api::ensure_delta_trace_context(&*delta);
      trace_id = delta->trace_id;
      line = api::serialize_delta_request(*delta);
    }
  } else if (auto request = api::parse_request(line)) {
    api::ensure_trace_context(&*request);
    trace_id = request->trace_id;
    line = api::serialize_request(*request);
  }

  const std::vector<std::size_t> order = pick_order();
  bool committed = false;
  std::size_t tried = 0;
  for (const std::size_t index : order) {
    ++tried;
    if (forward_to(index, line, fd, trace_id)) {
      committed = true;
      break;
    }
  }
  if (committed && tried > 1) {
    failovers_.fetch_add(1, std::memory_order_relaxed);
    dispatch_metrics().failovers.inc();
  }
  if (!committed) {
    (void)send_line(fd, api::response_error_line(util::Status::resource_exhausted(
                            "no live backend answered")));
  }
}

void RouteDispatcher::handle_control(int fd, const std::string& line) {
  const auto control = api::parse_control_request(line);
  if (!control) {
    (void)send_line(fd, api::response_error_line(util::Status::invalid_input(
                            "bad control line")));
    return;
  }
  switch (control->type) {
    case api::ControlRequest::Type::kPing:
      (void)send_line(fd, api::pong_line(uptime_.seconds()));
      return;
    case api::ControlRequest::Type::kStats:
      (void)send_line(fd, api::stats_reply_line(fleet_stats()));
      return;
    case api::ControlRequest::Type::kMetrics:
      (void)send_line(fd, api::metrics_reply_line(obs::metrics().render()));
      return;
    case api::ControlRequest::Type::kDrain: {
      api::ControlRequest drain;
      drain.type = api::ControlRequest::Type::kDrain;
      const std::string drain_line = api::serialize_control_request(drain);
      const std::lock_guard<std::mutex> lock(backends_mutex_);
      for (const Backend& backend : backends_) {
        const int bfd = connect_backend(backend.host, backend.port,
                                        options_.probe_timeout_ms);
        if (bfd < 0) continue;
        (void)send_line(bfd, drain_line);
        std::string ack;
        (void)read_line(bfd, 1u << 16, &ack);
        ::close(bfd);
      }
      (void)send_line(fd, api::draining_line());
      return;
    }
    case api::ControlRequest::Type::kBeacon:
      return;  // dispatchers do not gossip
    case api::ControlRequest::Type::kFailpoint: {
      // Applied to the dispatcher's own registry; chaos drivers arm each
      // backend directly through its own control port.
      util::FailPointRegistry& registry = util::FailPointRegistry::instance();
      if (control->spec.empty()) {
        registry.clear();
      } else if (const util::Status applied =
                     registry.configure(control->spec, control->seed);
                 !applied.is_ok()) {
        (void)send_line(fd, api::response_error_line(applied));
        return;
      }
      (void)send_line(fd, api::failpoints_line(registry.armed_count()));
      return;
    }
    case api::ControlRequest::Type::kSchemas: {
      // The dispatcher relays both flow verbs, so it advertises the full
      // set regardless of what any one backend speaks.
      api::SchemasReply schemas;
      schemas.request = api::kRequestSchema;
      schemas.response = api::kResponseSchema;
      schemas.control = api::kControlSchema;
      schemas.delta = api::kDeltaRequestSchema;
      (void)send_line(fd, api::schemas_reply_line(schemas));
      return;
    }
  }
}

bool RouteDispatcher::forward_to(std::size_t backend_index,
                                 const std::string& line, int client_fd,
                                 const std::string& trace_id) {
  std::string host;
  int port = 0;
  std::string addr;
  obs::LatencyHistogram* relay_latency = nullptr;
  {
    const std::lock_guard<std::mutex> lock(backends_mutex_);
    host = backends_[backend_index].host;
    port = backends_[backend_index].port;
    addr = backends_[backend_index].addr;
    relay_latency = backends_[backend_index].relay_latency;
  }
  const std::int64_t relay_start_us = util::process_uptime_us();
  const bool inject_connect_failure =
      g_fp_dispatch_connect.evaluate().kind == util::FailKind::kError;
  const int backend_fd =
      inject_connect_failure ? -1 : connect_backend(host, port);
  if (backend_fd < 0) {
    const std::lock_guard<std::mutex> lock(backends_mutex_);
    backends_[backend_index].last_good_probe = -1.0;  // mark dead immediately
    return false;
  }
  if (!send_line(backend_fd, line)) {
    ::close(backend_fd);
    const std::lock_guard<std::mutex> lock(backends_mutex_);
    backends_[backend_index].last_good_probe = -1.0;
    return false;
  }

  // Relay response bytes verbatim.  Until the first byte is relayed the
  // request can still fail over; afterwards we are committed.
  char chunk[16384];
  std::size_t relayed = 0;
  for (;;) {
    if (g_fp_dispatch_relay.evaluate().kind == util::FailKind::kError) {
      // Injected relay abort: before the first byte this is a clean
      // failover; after it, the client sees a truncated stream — exactly
      // the documented SIGKILL-mid-stream behavior.
      break;
    }
    const ssize_t n = ::recv(backend_fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    if (!send_all(client_fd, chunk, static_cast<std::size_t>(n))) {
      // Client vanished; drop the backend stream too.
      ::close(backend_fd);
      return true;  // committed from the dispatcher's point of view
    }
    relayed += static_cast<std::size_t>(n);
  }
  ::close(backend_fd);
  if (relayed == 0) {
    const std::lock_guard<std::mutex> lock(backends_mutex_);
    backends_[backend_index].last_good_probe = -1.0;
    return false;
  }
  {
    const std::lock_guard<std::mutex> lock(backends_mutex_);
    backends_[backend_index].forwarded += 1;
  }
  const std::int64_t relay_end_us = util::process_uptime_us();
  if (relay_latency != nullptr) {
    relay_latency->observe_us(
        static_cast<std::uint64_t>(relay_end_us - relay_start_us));
  }
  if (obs::tracing_enabled()) {
    if (trace_id.empty()) {
      obs::complete("dispatch.relay", relay_start_us,
                    relay_end_us - relay_start_us, {{"backend", addr}});
    } else {
      obs::complete("dispatch.relay", relay_start_us,
                    relay_end_us - relay_start_us,
                    {{"backend", addr}, {"trace_id", trace_id}});
    }
  }
  if (!options_.quiet) {
    std::fprintf(stderr, "[sadp_route_dispatch] %s served %zu byte(s)\n",
                 host.c_str(), relayed);
  }
  return true;
}

}  // namespace sadp::server
