// Control plane of the routing service (schema sadp.control.v1).
//
// Alongside sadp.flow_request.v1 batch lines, a daemon (and the
// sadp_route_dispatch front) accepts tiny newline-delimited control lines
// that are answered on the event loop itself — they never enter the
// admission gate or touch the worker pool, so health probes keep working
// while the server is saturated:
//
//   → {"type":"ping"}
//   ← {"schema":"sadp.control.v1","type":"pong","uptime_seconds":12.3}
//
//   → {"type":"stats"}
//   ← {"schema":"sadp.control.v1","type":"stats","queue_depth":1,...}
//
//   → {"type":"drain"}            // same effect as SIGTERM
//   ← {"schema":"sadp.control.v1","type":"draining"}
//
//   → {"type":"beacon","from":"127.0.0.1:7447","queue_depth":2,"active":2}
//     (no reply; the sender closes immediately)
//
//   → {"type":"failpoint","spec":"journal.append=err@0.5","seed":42}
//   ← {"schema":"sadp.control.v1","type":"failpoints","armed":1}
//     (empty spec clears every armed failpoint; see util/failpoint.hpp for
//     the spec grammar — this is how chaos tests arm faults in
//     already-running daemons)
//
//   → {"type":"schemas"}
//   ← {"schema":"sadp.control.v1","type":"schemas",
//      "request":"sadp.flow_request.v1","response":"sadp.flow_response.v1",
//      "control":"sadp.control.v1","delta":"sadp.flow_delta.v1"}
//     (feature probe: a client checks `delta` before sending an ECO request
//     instead of guessing what the daemon speaks)
//
//   → {"type":"metrics"}
//   ← {"schema":"sadp.control.v1","type":"metrics","body":"# HELP ..."}
//     (the body is the process's Prometheus text exposition — see
//     obs/metrics.hpp — JSON-escaped into a single line; `sadp_routed
//     --metrics` / `sadp_route_dispatch --metrics` unescape and print it,
//     which is what a scrape sidecar or the smoke tests consume)
//
// Beacons are the load/liveness gossip between sibling daemons — each
// backend periodically tells its peers how deep its queue is, a miniature
// of an OSPF hello.  The dispatcher's health probes are plain "stats"
// round trips; a backend whose reply goes stale is routed around.
//
// A control line is recognized by leading with its "type" member (all
// producers in this repo emit {"type":... first); anything carrying the
// flow-request schema is never treated as control.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sadp::api {

inline constexpr const char* kControlSchema = "sadp.control.v1";

/// One inbound control line.
struct ControlRequest {
  enum class Type {
    kPing,
    kStats,
    kDrain,
    kBeacon,
    kFailpoint,
    kMetrics,
    kSchemas,  ///< feature probe: which request/response schemas are spoken
  };
  Type type = Type::kPing;
  // Beacon payload: the sender's advertised address and load.
  std::string from;
  int queue_depth = 0;
  int active = 0;
  // Failpoint payload: the spec list to apply (empty = clear all) and the
  // deterministic schedule seed.
  std::string spec;
  std::uint64_t seed = 0;
};

[[nodiscard]] const char* control_type_name(ControlRequest::Type type) noexcept;

/// One line of JSON (no trailing newline), "type" member first.
[[nodiscard]] std::string serialize_control_request(
    const ControlRequest& request);

/// Parse a control line.  Unknown members are ignored; an unknown "type",
/// a missing "type", or a line carrying the flow-request schema returns
/// nullopt (and fills `error` when non-null).
[[nodiscard]] std::optional<ControlRequest> parse_control_request(
    std::string_view line, std::string* error = nullptr);

/// Cheap routing test for the server's line demultiplexer: does this line
/// lead with a "type" member (after the opening brace and whitespace)?
/// Control producers always serialize "type" first; flow requests lead
/// with "schema".
[[nodiscard]] bool looks_like_control_line(std::string_view line) noexcept;

// ---------------------------------------------------------------------------
// Replies.

/// One row of a stats reply's peer table: a sibling daemon known through
/// beacons, or (in the dispatcher's stats) a backend known through probes.
struct PeerStatus {
  std::string addr;
  int queue_depth = 0;
  int active = 0;
  double age_seconds = 0.0;  ///< since the last beacon / successful probe
  bool alive = true;
};

/// The "stats" reply payload.
struct StatsReply {
  std::size_t queue_depth = 0;  ///< admitted flow requests in flight
  std::size_t active = 0;       ///< same number today; kept distinct on the wire
  std::size_t rejected = 0;     ///< admission rejections since startup
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  // Request-latency quantiles from the server's run histogram (dispatcher:
  // relay latency across all backends).  0 until the first finished
  // request; absent on the wire from pre-telemetry daemons (parsed as 0,
  // same forward-compat rule as the cache counters).
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  int pool_size = 0;            ///< worker threads (0 for the dispatcher)
  double uptime_seconds = 0.0;
  bool draining = false;
  std::vector<PeerStatus> peers;
};

[[nodiscard]] std::string pong_line(double uptime_seconds);
[[nodiscard]] std::string draining_line();
/// Reply to a "failpoint" request: how many points are armed afterwards.
[[nodiscard]] std::string failpoints_line(std::size_t armed);
[[nodiscard]] std::string stats_reply_line(const StatsReply& stats);

/// Reply to a "metrics" request: the Prometheus text exposition carried as
/// a JSON-escaped single-line body.
[[nodiscard]] std::string metrics_reply_line(const std::string& exposition);

/// Parse a metrics reply line back into the exposition text.
[[nodiscard]] std::optional<std::string> parse_metrics_reply(
    std::string_view line, std::string* error = nullptr);

/// Parse a stats reply line.  Counter members are optional (absent = 0) so
/// newer clients keep parsing older daemons; a wrong schema or type is an
/// error.
[[nodiscard]] std::optional<StatsReply> parse_stats_reply(
    std::string_view line, std::string* error = nullptr);

/// The "schemas" reply payload: the wire schemas this process speaks, so a
/// client can feature-probe (e.g. for sadp.flow_delta.v1 support) instead
/// of guessing from version numbers.
struct SchemasReply {
  std::string request;   ///< sadp.flow_request.v1
  std::string response;  ///< sadp.flow_response.v1
  std::string control;   ///< sadp.control.v1
  /// Empty when the daemon predates ECO support.
  std::string delta;     ///< sadp.flow_delta.v1
};

/// Reply to a "schemas" request:
///   {"schema":"sadp.control.v1","type":"schemas","request":...,
///    "response":...,"control":...[,"delta":...]}
/// (`delta` omitted when empty, mirroring how optional members keep older
/// daemons' replies byte-stable).
[[nodiscard]] std::string schemas_reply_line(const SchemasReply& schemas);

/// Parse a schemas reply.  `delta` is optional (absent = daemon without ECO
/// support); a wrong schema or type is an error.
[[nodiscard]] std::optional<SchemasReply> parse_schemas_reply(
    std::string_view line, std::string* error = nullptr);

}  // namespace sadp::api
