#include "api/control.hpp"

#include "util/json.hpp"

namespace sadp::api {

namespace {

bool read_opt_string(const util::JsonValue& doc, const char* key,
                     std::string* out) {
  const util::JsonValue* v = doc.find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) return false;
  *out = v->string_value;
  return true;
}

bool read_opt_int(const util::JsonValue& doc, const char* key, int* out) {
  const util::JsonValue* v = doc.find(key);
  if (v == nullptr) return true;
  if (!v->is_number()) return false;
  *out = static_cast<int>(v->number_value);
  return true;
}

std::size_t read_count(const util::JsonValue& doc, const char* key) {
  const util::JsonValue* v = doc.find(key);
  return (v != nullptr && v->is_number())
             ? static_cast<std::size_t>(v->number_value)
             : 0u;
}

double read_double(const util::JsonValue& doc, const char* key) {
  const util::JsonValue* v = doc.find(key);
  return (v != nullptr && v->is_number()) ? v->number_value : 0.0;
}

bool read_flag(const util::JsonValue& doc, const char* key) {
  const util::JsonValue* v = doc.find(key);
  return v != nullptr && v->is_bool() && v->bool_value;
}

}  // namespace

const char* control_type_name(ControlRequest::Type type) noexcept {
  switch (type) {
    case ControlRequest::Type::kPing: return "ping";
    case ControlRequest::Type::kStats: return "stats";
    case ControlRequest::Type::kDrain: return "drain";
    case ControlRequest::Type::kBeacon: return "beacon";
    case ControlRequest::Type::kFailpoint: return "failpoint";
    case ControlRequest::Type::kMetrics: return "metrics";
    case ControlRequest::Type::kSchemas: return "schemas";
  }
  return "?";
}

std::string serialize_control_request(const ControlRequest& request) {
  util::JsonWriter json;
  json.begin_object();
  json.key("type").value(control_type_name(request.type));
  if (request.type == ControlRequest::Type::kBeacon) {
    json.key("from").value(request.from);
    json.key("queue_depth").value(request.queue_depth);
    json.key("active").value(request.active);
  }
  if (request.type == ControlRequest::Type::kFailpoint) {
    json.key("spec").value(request.spec);
    json.key("seed").value(request.seed);
  }
  json.end_object();
  return json.str();
}

std::optional<ControlRequest> parse_control_request(std::string_view line,
                                                    std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<ControlRequest> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::string parse_error;
  const auto doc = util::parse_json(line, &parse_error);
  if (!doc || !doc->is_object()) {
    return fail("control line is not a JSON object: " + parse_error);
  }
  const util::JsonValue* schema = doc->find("schema");
  if (schema != nullptr &&
      (!schema->is_string() || schema->string_value != kControlSchema)) {
    return fail("not a control line (schema present and not " +
                std::string(kControlSchema) + ")");
  }
  const util::JsonValue* type = doc->find("type");
  if (type == nullptr || !type->is_string()) {
    return fail("control line without a string 'type' member");
  }

  ControlRequest request;
  if (type->string_value == "ping") {
    request.type = ControlRequest::Type::kPing;
  } else if (type->string_value == "stats") {
    request.type = ControlRequest::Type::kStats;
  } else if (type->string_value == "drain") {
    request.type = ControlRequest::Type::kDrain;
  } else if (type->string_value == "beacon") {
    request.type = ControlRequest::Type::kBeacon;
  } else if (type->string_value == "failpoint") {
    request.type = ControlRequest::Type::kFailpoint;
  } else if (type->string_value == "metrics") {
    request.type = ControlRequest::Type::kMetrics;
  } else if (type->string_value == "schemas") {
    request.type = ControlRequest::Type::kSchemas;
  } else {
    return fail("unknown control type '" + type->string_value + "'");
  }
  if (!read_opt_string(*doc, "from", &request.from) ||
      !read_opt_int(*doc, "queue_depth", &request.queue_depth) ||
      !read_opt_int(*doc, "active", &request.active)) {
    return fail("malformed beacon payload");
  }
  if (!read_opt_string(*doc, "spec", &request.spec)) {
    return fail("malformed failpoint payload");
  }
  if (const util::JsonValue* seed = doc->find("seed"); seed != nullptr) {
    if (!seed->is_number()) return fail("malformed failpoint payload");
    request.seed = static_cast<std::uint64_t>(seed->number_value);
  }
  return request;
}

bool looks_like_control_line(std::string_view line) noexcept {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  constexpr std::string_view kTypeKey = "\"type\"";
  return line.substr(i, kTypeKey.size()) == kTypeKey;
}

std::string pong_line(double uptime_seconds) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kControlSchema);
  json.key("type").value("pong");
  json.key("uptime_seconds").value(uptime_seconds);
  json.end_object();
  return json.str();
}

std::string draining_line() {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kControlSchema);
  json.key("type").value("draining");
  json.end_object();
  return json.str();
}

std::string failpoints_line(std::size_t armed) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kControlSchema);
  json.key("type").value("failpoints");
  json.key("armed").value(armed);
  json.end_object();
  return json.str();
}

std::string stats_reply_line(const StatsReply& stats) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kControlSchema);
  json.key("type").value("stats");
  json.key("queue_depth").value(stats.queue_depth);
  json.key("active").value(stats.active);
  json.key("rejected").value(stats.rejected);
  json.key("cache_hits").value(stats.cache_hits);
  json.key("cache_misses").value(stats.cache_misses);
  json.key("latency_p50_ms").value(stats.latency_p50_ms);
  json.key("latency_p99_ms").value(stats.latency_p99_ms);
  json.key("pool_size").value(stats.pool_size);
  json.key("uptime_seconds").value(stats.uptime_seconds);
  json.key("draining").value(stats.draining);
  json.key("peers").begin_array();
  for (const PeerStatus& peer : stats.peers) {
    json.begin_object();
    json.key("addr").value(peer.addr);
    json.key("queue_depth").value(peer.queue_depth);
    json.key("active").value(peer.active);
    json.key("age_seconds").value(peer.age_seconds);
    json.key("alive").value(peer.alive);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string metrics_reply_line(const std::string& exposition) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kControlSchema);
  json.key("type").value("metrics");
  json.key("content_type").value("text/plain; version=0.0.4");
  json.key("body").value(exposition);
  json.end_object();
  return json.str();
}

std::optional<std::string> parse_metrics_reply(std::string_view line,
                                               std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<std::string> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::string parse_error;
  const auto doc = util::parse_json(line, &parse_error);
  if (!doc || !doc->is_object()) {
    return fail("metrics reply is not a JSON object: " + parse_error);
  }
  const util::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value != kControlSchema) {
    return fail(std::string("metrics reply schema mismatch (want ") +
                kControlSchema + ")");
  }
  const util::JsonValue* type = doc->find("type");
  if (type == nullptr || !type->is_string() ||
      type->string_value != "metrics") {
    return fail("not a metrics reply");
  }
  const util::JsonValue* body = doc->find("body");
  if (body == nullptr || !body->is_string()) {
    return fail("metrics reply without a string 'body'");
  }
  return body->string_value;
}

std::string schemas_reply_line(const SchemasReply& schemas) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kControlSchema);
  json.key("type").value("schemas");
  json.key("request").value(schemas.request);
  json.key("response").value(schemas.response);
  json.key("control").value(schemas.control);
  if (!schemas.delta.empty()) json.key("delta").value(schemas.delta);
  json.end_object();
  return json.str();
}

std::optional<SchemasReply> parse_schemas_reply(std::string_view line,
                                                std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<SchemasReply> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::string parse_error;
  const auto doc = util::parse_json(line, &parse_error);
  if (!doc || !doc->is_object()) {
    return fail("schemas reply is not a JSON object: " + parse_error);
  }
  const util::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value != kControlSchema) {
    return fail(std::string("schemas reply schema mismatch (want ") +
                kControlSchema + ")");
  }
  const util::JsonValue* type = doc->find("type");
  if (type == nullptr || !type->is_string() ||
      type->string_value != "schemas") {
    return fail("not a schemas reply");
  }
  SchemasReply schemas;
  if (!read_opt_string(*doc, "request", &schemas.request) ||
      !read_opt_string(*doc, "response", &schemas.response) ||
      !read_opt_string(*doc, "control", &schemas.control) ||
      !read_opt_string(*doc, "delta", &schemas.delta)) {
    return fail("malformed schemas reply");
  }
  return schemas;
}

std::optional<StatsReply> parse_stats_reply(std::string_view line,
                                            std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<StatsReply> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::string parse_error;
  const auto doc = util::parse_json(line, &parse_error);
  if (!doc || !doc->is_object()) {
    return fail("stats reply is not a JSON object: " + parse_error);
  }
  const util::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value != kControlSchema) {
    return fail(std::string("stats reply schema mismatch (want ") +
                kControlSchema + ")");
  }
  const util::JsonValue* type = doc->find("type");
  if (type == nullptr || !type->is_string() || type->string_value != "stats") {
    return fail("not a stats reply");
  }

  StatsReply stats;
  stats.queue_depth = read_count(*doc, "queue_depth");
  stats.active = read_count(*doc, "active");
  stats.rejected = read_count(*doc, "rejected");
  stats.cache_hits = read_count(*doc, "cache_hits");
  stats.cache_misses = read_count(*doc, "cache_misses");
  stats.latency_p50_ms = read_double(*doc, "latency_p50_ms");
  stats.latency_p99_ms = read_double(*doc, "latency_p99_ms");
  stats.pool_size = static_cast<int>(read_count(*doc, "pool_size"));
  stats.uptime_seconds = read_double(*doc, "uptime_seconds");
  stats.draining = read_flag(*doc, "draining");
  if (const util::JsonValue* peers = doc->find("peers");
      peers != nullptr && peers->is_array()) {
    for (const util::JsonValue& entry : peers->array) {
      if (!entry.is_object()) continue;
      PeerStatus peer;
      if (!read_opt_string(entry, "addr", &peer.addr) ||
          !read_opt_int(entry, "queue_depth", &peer.queue_depth) ||
          !read_opt_int(entry, "active", &peer.active)) {
        continue;
      }
      peer.age_seconds = read_double(entry, "age_seconds");
      const util::JsonValue* alive = entry.find("alive");
      peer.alive = alive == nullptr || !alive->is_bool() || alive->bool_value;
      stats.peers.push_back(std::move(peer));
    }
  }
  return stats;
}

}  // namespace sadp::api
