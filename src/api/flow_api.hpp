// Routing-as-a-service request/response layer (schemas
// sadp.flow_request.v1 / sadp.flow_response.v1).
//
// One versioned request describes a whole flow batch — spec-or-netlist
// jobs, per-job and batch deadlines, keep-going vs fail-fast, DVI
// degradation, journal/resume — and maps 1:1 onto engine::FlowJob +
// engine::EngineOptions.  Every consumer goes through the same three
// steps:
//
//   FlowRequest request = ...;            // from CLI flags or a socket line
//   DispatchResult run = api::dispatch(request, hooks);
//
// The CLI (sadp_route) builds a request from its flags and dispatches it
// in-process; the daemon (sadp_routed) parses the identical JSON off a TCP
// socket and dispatches it on its shared worker pool; the client tool
// serializes the same struct onto the wire.  A CLI invocation therefore IS
// a local request — there is exactly one place where requests are
// validated, materialized into jobs, and turned into outcome rows.
//
// Wire framing is newline-delimited JSON: the client sends one
// flow_request.v1 line; the server streams back one flow_response.v1 line
// per finished job ("row", in completion order) followed by one "batch"
// summary line, or a single "error" line (e.g. code resource_exhausted
// when the admission queue is full).  Row lines embed the job's full
// sadp.flow_journal.v1 payload, so a row received over the socket carries
// exactly the fields a journaled/in-process run records.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/flow_engine.hpp"
#include "netlist/bench_gen.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace sadp::api {

inline constexpr const char* kRequestSchema = "sadp.flow_request.v1";
inline constexpr const char* kResponseSchema = "sadp.flow_response.v1";

/// Parse a style/DVI-method name as it appears in requests, journals and
/// CLI flags ("SIM", "SID", ... / "heuristic", "exact", "ILP").
[[nodiscard]] std::optional<grid::SadpStyle> parse_style(
    const std::string& name);
[[nodiscard]] std::optional<core::DviMethod> parse_dvi_method(
    const std::string& name);

/// One job of a request.  Exactly one instance source must be set:
/// `benchmark` (a Table I name, resolved with `scaled`), an inline
/// generator `spec`, or `netlist_path` (a path readable where the request
/// is dispatched — the daemon is a local trusted service, so paths resolve
/// on the server host).
struct JobRequest {
  std::string label;  ///< row/journal key; defaults to the instance name
  std::string arm;    ///< display-only grouping tag
  /// Trace context: this job's span id within the request's trace (see
  /// FlowRequest::trace_id).  Minted by the dispatcher (or the client when
  /// talking to a daemon directly); omitted from the wire when empty, so
  /// untraced requests keep their pre-telemetry bytes.
  std::string span_id;
  std::string benchmark;
  bool scaled = true;
  std::optional<netlist::BenchSpec> spec;
  std::string netlist_path;
  grid::SadpStyle style = grid::SadpStyle::kSim;
  bool consider_dvi = true;
  bool consider_tpl = true;
  core::DviMethod dvi_method = core::DviMethod::kHeuristic;
  double ilp_limit_seconds = 60.0;
  bool degrade_dvi = false;       ///< ILP DVI timeout => heuristic fallback
  double deadline_seconds = 0.0;  ///< per-job wall deadline (0 = none)
  /// Partition-parallel routing regions (FlowOptions::partitions).  0 keeps
  /// the engine default (1 = serial); the member is omitted from the wire
  /// format when 0, so pre-partition requests and daemons interoperate.
  int partitions = 0;
};

/// A whole batch: jobs plus the engine-level execution policy.
struct FlowRequest {
  int workers = 0;  ///< engine workers (0 = all cores; servers cap this)
  double batch_deadline_seconds = 0.0;
  bool keep_going = false;  ///< report every row instead of failing fast
  /// Crash-recovery journal (a path where the request is dispatched); with
  /// `resume`, rows already journaled are restored instead of re-executed.
  std::string journal_path;
  bool resume = false;
  /// Journal fsync policy ("none"/"batch"/"always" on the wire; optional,
  /// so older clients parse).  Batch-level: does not affect rows or cache
  /// keys, only durability.
  engine::JournalSync journal_sync = engine::JournalSync::kBatch;
  /// Trace context, propagated across processes so sadp_trace_merge can
  /// stitch one request's spans together: a fleet-unique id for this
  /// request (dispatcher relay span, daemon admission/run spans and engine
  /// job spans all carry it as an arg) and the sender's CLOCK_REALTIME
  /// send instant.  Both optional on the wire (absent = untraced = exact
  /// old behavior); the outcome rows a traced request produces are still
  /// byte-identical to untraced ones — trace context lives only in the
  /// row *framing* and the batch summary, never inside the journal object.
  std::string trace_id;
  std::int64_t sent_unix_us = 0;
  std::vector<JobRequest> jobs;
};

/// The label a job's row will carry: JobRequest::label when set, otherwise
/// the instance source (benchmark / spec name / netlist path).
[[nodiscard]] std::string effective_label(const JobRequest& job);

/// Mint a fleet-unique trace/span id: 16 lowercase hex characters, hashed
/// (splitmix64) from the realtime clock, the pid and a process-local
/// counter.  The dispatcher mints one trace_id per relayed request plus a
/// span_id per job; a client talking to a daemon directly does the same.
[[nodiscard]] std::string mint_trace_id();

/// Fill in trace context on a request that has none: a fresh trace_id, a
/// span_id per job, and the sender's send timestamp.  A request that
/// already carries a trace_id is left untouched (the upstream hop owns the
/// trace), so the dispatcher can call this unconditionally.
void ensure_trace_context(FlowRequest* request);

/// Serialize one job object (the element of a request's `jobs` array),
/// driven by the shared JobRequest field table.  sadp.flow_delta.v1 reuses
/// this for its `base` job, so both schemas carry byte-identical job
/// objects.
void write_job_request(util::JsonWriter& json, const JobRequest& job);

/// Parse one job object with "absent = default, mistyped = error"
/// semantics; false + `error` on a malformed field or unknown style /
/// dvi_method token.
[[nodiscard]] bool read_job_request(const util::JsonValue& doc,
                                    JobRequest* job, std::string* error);

/// Per-job structural validation (exactly one instance source, non-negative
/// limits); `where` prefixes the error message ("job 3").
[[nodiscard]] util::Status validate_job(const JobRequest& job,
                                        const std::string& where);

/// Structural validation, shared by every entry point: at least one job,
/// exactly one instance source per job, non-negative limits, resume only
/// with a journal, and — because rows and the resume journal are keyed by
/// label — no duplicate effective labels.  Returns kInvalidInput with a
/// pinpointing message on the first violation.
[[nodiscard]] util::Status validate(const FlowRequest& request);

/// One line of JSON (no trailing newline), schema field included.
[[nodiscard]] std::string serialize_request(const FlowRequest& request);

/// Inverse of serialize_request.  Unknown members are ignored (forward
/// compatibility); a wrong/missing schema or malformed field is an error:
/// returns nullopt and fills `error` when non-null.
[[nodiscard]] std::optional<FlowRequest> parse_request(
    std::string_view line, std::string* error = nullptr);

/// Materialize the request's jobs (resolve benchmark names, read netlist
/// files).  kInvalidInput on unknown benchmarks or unreadable/malformed
/// netlist files; on success `jobs` holds one FlowJob per JobRequest, in
/// order.
[[nodiscard]] util::Status to_flow_jobs(const FlowRequest& request,
                                        std::vector<engine::FlowJob>* jobs);

/// The engine-level options a request asks for (workers, batch deadline,
/// fail-fast policy, journal/resume).  Callers attach their own hooks
/// (progress callback, cancel/drain tokens, executor) on top.
[[nodiscard]] engine::EngineOptions engine_options(const FlowRequest& request);

// ---------------------------------------------------------------------------
// Responses: one "row" line per finished job (streamed in completion
// order), one final "batch" summary line, or a single "error" line.

/// {"schema":"sadp.flow_response.v1","type":"row","done":D,"total":T,
///  ["trace_id":...,"span_id":...,]["cache":"hit"|"miss",]
///  "outcome":{<sadp.flow_journal.v1 object>}}
/// `cache` (nullptr = omit the member) records whether the serving daemon
/// answered from its result cache; rows from paths that never consult the
/// cache (CLI dispatch, journaled batches, journal-restored rows) omit it.
/// `trace_id`/`span_id` echo the request's trace context (empty = omit):
/// they live in the row framing, never inside the outcome object, so the
/// journal payload stays byte-identical with or without tracing.
[[nodiscard]] std::string response_row_line(const engine::JobOutcome& outcome,
                                            std::size_t done,
                                            std::size_t total,
                                            const char* cache = nullptr,
                                            const std::string& trace_id = {},
                                            const std::string& span_id = {});

/// A cache hit replays the stored journal-object bytes verbatim;
/// `response_row_line_raw` wraps such a pre-serialized object in the row
/// framing without re-encoding (this is what keeps hit rows byte-identical
/// to the miss rows they were recorded from).
[[nodiscard]] std::string response_row_line_raw(std::string_view outcome_json,
                                                std::size_t done,
                                                std::size_t total,
                                                const char* cache,
                                                const std::string& trace_id = {},
                                                const std::string& span_id = {});

/// Counts of the final "batch" summary line.  `jobs` can exceed
/// `ok+degraded+...` contributions of one engine run because cache-served
/// rows never enter the engine.
struct ResponseSummary {
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t degraded = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t cancelled = 0;
  std::size_t resumed = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  int workers = 0;
  double wall_seconds = 0.0;
  /// Trace context, echoed from the request when present.  The hop
  /// timestamps are the daemon's CLOCK_REALTIME receive/reply instants
  /// (microseconds), which is what lets sadp_trace_merge bound the network
  /// leg between the dispatcher's relay span and the daemon's work.  All
  /// three omitted from the wire when the request carried no trace_id.
  std::string trace_id;
  std::int64_t recv_unix_us = 0;
  std::int64_t sent_unix_us = 0;
};

/// {"schema":...,"type":"batch","jobs":N,"ok":...,"degraded":...,
///  "failed":...,"timed_out":...,"cancelled":...,"resumed":...,
///  "cache_hits":...,"cache_misses":...,"workers":W,"wall_seconds":S
///  [,"trace_id":...,"recv_unix_us":...,"sent_unix_us":...]}
[[nodiscard]] std::string response_summary_line(const ResponseSummary& summary);

/// Convenience overload for callers with a plain engine batch (no cache).
[[nodiscard]] std::string response_summary_line(
    const engine::BatchResult& batch, int workers, double wall_seconds);

/// {"schema":...,"type":"error","code":"resource_exhausted","message":...}
[[nodiscard]] std::string response_error_line(const util::Status& error);

/// One parsed response line, discriminated by `kind`.  kDelta is the extra
/// summary line an ECO (sadp.flow_delta.v1) request streams between its row
/// and its batch line — see api/flow_delta.hpp for the builder.
struct ResponseEvent {
  enum class Kind { kRow, kBatch, kError, kDelta };
  Kind kind = Kind::kError;
  // kRow: the job's outcome (full journal payload) plus stream progress.
  engine::JobOutcome outcome;
  std::size_t done = 0;
  std::size_t total = 0;
  /// "hit" / "miss" when the serving daemon consulted its result cache;
  /// empty when the row carried no cache member (older daemons, CLI rows,
  /// journaled batches).
  std::string cache;
  /// Trace context (rows: trace_id + span_id; batch: trace_id + hop
  /// timestamps).  Empty/0 when the stream is untraced.
  std::string trace_id;
  std::string span_id;
  std::int64_t recv_unix_us = 0;
  std::int64_t sent_unix_us = 0;
  // kBatch: the summary counts of the whole batch.  The cache counters are
  // optional on the wire (absent = 0) so pre-cache summaries still parse.
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t degraded = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t cancelled = 0;
  std::size_t resumed = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  int workers = 0;
  double wall_seconds = 0.0;
  // kDelta: the ECO summary (see core::EcoSummary for the semantics).
  int nets_ripped = 0;
  int nets_untouched = 0;
  int nets_total = 0;
  int changes = 0;
  std::vector<int> ripped_ids;
  double load_seconds = 0.0;
  std::string base_fingerprint;
  // kError: the structured server-side error.
  util::Status error;
};

/// Parse any response line.  nullopt + `error` on malformed input or a
/// schema mismatch (a kError event is a successful parse, not a failure).
/// The cache members ("cache" on rows, "cache_hits"/"cache_misses" on the
/// summary) are optional, so rows written by pre-cache daemons — and old
/// journals replayed through this parser — still parse.
[[nodiscard]] std::optional<ResponseEvent> parse_response_line(
    std::string_view line, std::string* error = nullptr);

// ---------------------------------------------------------------------------
// Dispatch: the one function that turns a request into outcome rows.

/// Caller-side hooks merged into the request's engine options.
struct DispatchOptions {
  /// Streamed per finished job (serialized by the engine); servers write a
  /// response_row_line from here.
  std::function<void(const engine::JobOutcome&, std::size_t done,
                     std::size_t total)>
      on_job_done;
  /// Request-scoped cancellation (client disconnect, Ctrl-C).
  util::CancelToken cancel;
  /// Graceful drain (SIGTERM): finish running jobs, skip unstarted ones.
  util::CancelToken drain;
  /// Shared worker pool of a long-lived server; null = engine spawns its
  /// own threads.
  engine::Executor* executor = nullptr;
  /// Cap on the request's `workers` (a server pins this to its pool size
  /// so one request cannot oversubscribe the pool).  0 = no cap.
  int max_workers = 0;
  /// Retain routers in the outcomes (local CLI validation/rendering only —
  /// routers never travel over the wire).
  bool keep_router = false;
};

struct DispatchResult {
  /// kInvalidInput when validation or job materialization failed; the
  /// batch is then empty and nothing was executed.
  util::Status status;
  engine::BatchResult batch;
  int workers = 0;  ///< resolved engine worker count
  double wall_seconds = 0.0;
};

/// validate + to_flow_jobs + FlowEngine::run, under the caller's hooks.
/// This is the single entry point the CLI, the daemon and the tests share.
[[nodiscard]] DispatchResult dispatch(const FlowRequest& request,
                                      const DispatchOptions& options = {});

}  // namespace sadp::api
