#include "api/flow_api.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>

#include "engine/journal.hpp"
#include "grid/colored_grid.hpp"
#include "netlist/io.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace sadp::api {

namespace {

/// Field accessors with "absent = default, mistyped = error" semantics:
/// requests written by newer clients may carry members we do not know, but
/// a member we do know must have the right type.
const util::JsonValue* find_member(const util::JsonValue& doc,
                                   const char* key) {
  return doc.is_object() ? doc.find(key) : nullptr;
}

bool read_string(const util::JsonValue& doc, const char* key,
                 std::string* out, std::string* error) {
  const util::JsonValue* v = find_member(doc, key);
  if (v == nullptr) return true;
  if (!v->is_string()) {
    *error = std::string("field '") + key + "' must be a string";
    return false;
  }
  *out = v->string_value;
  return true;
}

bool read_number(const util::JsonValue& doc, const char* key, double* out,
                 std::string* error) {
  const util::JsonValue* v = find_member(doc, key);
  if (v == nullptr) return true;
  if (!v->is_number()) {
    *error = std::string("field '") + key + "' must be a number";
    return false;
  }
  *out = v->number_value;
  return true;
}

bool read_int(const util::JsonValue& doc, const char* key, int* out,
              std::string* error) {
  double value = *out;
  if (!read_number(doc, key, &value, error)) return false;
  *out = static_cast<int>(value);
  return true;
}

bool read_bool(const util::JsonValue& doc, const char* key, bool* out,
               std::string* error) {
  const util::JsonValue* v = find_member(doc, key);
  if (v == nullptr) return true;
  if (!v->is_bool()) {
    *error = std::string("field '") + key + "' must be a bool";
    return false;
  }
  *out = v->bool_value;
  return true;
}

void write_spec(util::JsonWriter& json, const netlist::BenchSpec& spec) {
  json.begin_object();
  json.key("name").value(spec.name);
  json.key("width").value(spec.width);
  json.key("height").value(spec.height);
  json.key("num_nets").value(spec.num_nets);
  json.key("num_metal_layers").value(spec.num_metal_layers);
  json.key("local_radius").value(spec.local_radius);
  json.key("global_net_fraction").value(spec.global_net_fraction);
  json.key("min_pin_spacing").value(spec.min_pin_spacing);
  json.key("row_structured").value(spec.row_structured);
  json.key("row_pitch").value(spec.row_pitch);
  // Seeds are user-chosen small integers (0 = derive from the name); the
  // JSON double round-trip is exact below 2^53.
  json.key("seed").value(static_cast<long long>(spec.seed));
  // Optional member (read_spec defaults it to 1), so unscaled specs keep
  // their pre-scale wire bytes.
  if (spec.scale != 1.0) json.key("scale").value(spec.scale);
  json.end_object();
}

bool read_spec(const util::JsonValue& doc, netlist::BenchSpec* spec,
               std::string* error) {
  if (!doc.is_object()) {
    *error = "field 'spec' must be an object";
    return false;
  }
  double seed = 0.0;
  double fraction = spec->global_net_fraction;
  if (!read_string(doc, "name", &spec->name, error) ||
      !read_int(doc, "width", &spec->width, error) ||
      !read_int(doc, "height", &spec->height, error) ||
      !read_int(doc, "num_nets", &spec->num_nets, error) ||
      !read_int(doc, "num_metal_layers", &spec->num_metal_layers, error) ||
      !read_int(doc, "local_radius", &spec->local_radius, error) ||
      !read_number(doc, "global_net_fraction", &fraction, error) ||
      !read_int(doc, "min_pin_spacing", &spec->min_pin_spacing, error) ||
      !read_bool(doc, "row_structured", &spec->row_structured, error) ||
      !read_int(doc, "row_pitch", &spec->row_pitch, error) ||
      !read_number(doc, "seed", &seed, error) ||
      !read_number(doc, "scale", &spec->scale, error)) {
    return false;
  }
  spec->global_net_fraction = fraction;
  spec->seed = static_cast<std::uint64_t>(seed);
  return true;
}

// --- JobRequest field table --------------------------------------------------
//
// One table drives serialization (emit order, omit-when-default), parsing
// ("absent = default, mistyped = error") and per-field validation, so the
// three can never drift apart.  Fields needing cross-member logic — the
// benchmark+scaled pair, the spec object, style/dvi_method token
// resolution — get their own kinds instead of a second hand-written list.
struct JobField {
  enum class Kind {
    kString,     ///< std::string member; omitted when empty if omit_default
    kBool,       ///< bool member, always emitted
    kNumber,     ///< double member, always emitted; validated >= 0
    kIntLimit,   ///< int member, omitted when <= 0; validated >= 0
    kBenchmark,  ///< benchmark + scaled pair, omitted when benchmark empty
    kSpec,       ///< the optional BenchSpec object
    kStyle,      ///< SadpStyle token
    kDviMethod,  ///< DviMethod token
  };
  const char* key;
  Kind kind;
  bool omit_default = false;
  std::string JobRequest::* str = nullptr;
  bool JobRequest::* flag = nullptr;
  double JobRequest::* num = nullptr;
  int JobRequest::* count = nullptr;
};

// Table order IS the wire order: existing requests must stay byte-identical.
constexpr JobField kJobFields[] = {
    {.key = "label", .kind = JobField::Kind::kString, .omit_default = true,
     .str = &JobRequest::label},
    {.key = "arm", .kind = JobField::Kind::kString, .omit_default = true,
     .str = &JobRequest::arm},
    {.key = "span_id", .kind = JobField::Kind::kString, .omit_default = true,
     .str = &JobRequest::span_id},
    {.key = "benchmark", .kind = JobField::Kind::kBenchmark},
    {.key = "spec", .kind = JobField::Kind::kSpec},
    {.key = "netlist_path", .kind = JobField::Kind::kString,
     .omit_default = true, .str = &JobRequest::netlist_path},
    {.key = "style", .kind = JobField::Kind::kStyle},
    {.key = "consider_dvi", .kind = JobField::Kind::kBool,
     .flag = &JobRequest::consider_dvi},
    {.key = "consider_tpl", .kind = JobField::Kind::kBool,
     .flag = &JobRequest::consider_tpl},
    {.key = "dvi_method", .kind = JobField::Kind::kDviMethod},
    {.key = "ilp_limit", .kind = JobField::Kind::kNumber,
     .num = &JobRequest::ilp_limit_seconds},
    {.key = "degrade_dvi", .kind = JobField::Kind::kBool,
     .flag = &JobRequest::degrade_dvi},
    {.key = "deadline", .kind = JobField::Kind::kNumber,
     .num = &JobRequest::deadline_seconds},
    // Omitted when <= 0 (engine default), so pre-partition rows and daemons
    // keep byte-identical requests.
    {.key = "partitions", .kind = JobField::Kind::kIntLimit,
     .count = &JobRequest::partitions},
};

}  // namespace

std::optional<grid::SadpStyle> parse_style(const std::string& name) {
  for (const grid::SadpStyle s :
       {grid::SadpStyle::kSim, grid::SadpStyle::kSid, grid::SadpStyle::kSaqpSim,
        grid::SadpStyle::kSimTrim}) {
    if (name == grid::style_name(s)) return s;
  }
  return std::nullopt;
}

std::optional<core::DviMethod> parse_dvi_method(const std::string& name) {
  for (const core::DviMethod m :
       {core::DviMethod::kIlp, core::DviMethod::kHeuristic,
        core::DviMethod::kExact}) {
    if (name == core::dvi_method_name(m)) return m;
  }
  return std::nullopt;
}

std::string mint_trace_id() {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t x = static_cast<std::uint64_t>(util::unix_now_us());
  x ^= static_cast<std::uint64_t>(::getpid()) << 32;
  x += counter.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b97f4a7c15ULL;
  // splitmix64 finalizer: uniform 64-bit ids from the structured seed.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(x));
  return buf;
}

void ensure_trace_context(FlowRequest* request) {
  if (!request->trace_id.empty()) return;
  request->trace_id = mint_trace_id();
  request->sent_unix_us = util::unix_now_us();
  for (JobRequest& job : request->jobs) job.span_id = mint_trace_id();
}

std::string effective_label(const JobRequest& job) {
  if (!job.label.empty()) return job.label;
  if (!job.benchmark.empty()) return job.benchmark;
  if (job.spec.has_value()) return job.spec->name;
  return job.netlist_path;
}

void write_job_request(util::JsonWriter& json, const JobRequest& job) {
  json.begin_object();
  for (const JobField& field : kJobFields) {
    switch (field.kind) {
      case JobField::Kind::kString: {
        const std::string& value = job.*(field.str);
        if (!(field.omit_default && value.empty())) {
          json.key(field.key).value(value);
        }
        break;
      }
      case JobField::Kind::kBool:
        json.key(field.key).value(job.*(field.flag));
        break;
      case JobField::Kind::kNumber:
        json.key(field.key).value(job.*(field.num));
        break;
      case JobField::Kind::kIntLimit:
        if (job.*(field.count) > 0) json.key(field.key).value(job.*(field.count));
        break;
      case JobField::Kind::kBenchmark:
        if (!job.benchmark.empty()) {
          json.key("benchmark").value(job.benchmark);
          json.key("scaled").value(job.scaled);
        }
        break;
      case JobField::Kind::kSpec:
        if (job.spec.has_value()) {
          json.key("spec");
          write_spec(json, *job.spec);
        }
        break;
      case JobField::Kind::kStyle:
        json.key(field.key).value(grid::style_name(job.style));
        break;
      case JobField::Kind::kDviMethod:
        json.key(field.key).value(core::dvi_method_name(job.dvi_method));
        break;
    }
  }
  json.end_object();
}

bool read_job_request(const util::JsonValue& doc, JobRequest* job,
                      std::string* error) {
  if (!doc.is_object()) {
    *error = "not a JSON object";
    return false;
  }
  std::string style_name = grid::style_name(job->style);
  std::string method_name = core::dvi_method_name(job->dvi_method);
  for (const JobField& field : kJobFields) {
    switch (field.kind) {
      case JobField::Kind::kString:
        if (!read_string(doc, field.key, &(job->*(field.str)), error)) {
          return false;
        }
        break;
      case JobField::Kind::kBool:
        if (!read_bool(doc, field.key, &(job->*(field.flag)), error)) {
          return false;
        }
        break;
      case JobField::Kind::kNumber:
        if (!read_number(doc, field.key, &(job->*(field.num)), error)) {
          return false;
        }
        break;
      case JobField::Kind::kIntLimit:
        if (!read_int(doc, field.key, &(job->*(field.count)), error)) {
          return false;
        }
        break;
      case JobField::Kind::kBenchmark:
        if (!read_string(doc, "benchmark", &job->benchmark, error) ||
            !read_bool(doc, "scaled", &job->scaled, error)) {
          return false;
        }
        break;
      case JobField::Kind::kSpec:
        if (const util::JsonValue* spec = doc.find("spec")) {
          netlist::BenchSpec parsed;
          if (!read_spec(*spec, &parsed, error)) return false;
          job->spec = parsed;
        }
        break;
      case JobField::Kind::kStyle:
        if (!read_string(doc, field.key, &style_name, error)) return false;
        break;
      case JobField::Kind::kDviMethod:
        if (!read_string(doc, field.key, &method_name, error)) return false;
        break;
    }
  }
  const auto style = parse_style(style_name);
  if (!style) {
    *error = "unknown style '" + style_name + "'";
    return false;
  }
  job->style = *style;
  const auto method = parse_dvi_method(method_name);
  if (!method) {
    *error = "unknown dvi_method '" + method_name + "'";
    return false;
  }
  job->dvi_method = *method;
  return true;
}

util::Status validate_job(const JobRequest& job, const std::string& where) {
  const int sources = (!job.benchmark.empty()) + job.spec.has_value() +
                      (!job.netlist_path.empty());
  if (sources != 1) {
    return util::Status::invalid_input(
        where + ": exactly one of benchmark, spec, netlist_path required");
  }
  for (const JobField& field : kJobFields) {
    switch (field.kind) {
      case JobField::Kind::kNumber:
        if (job.*(field.num) < 0.0) {
          return util::Status::invalid_input(where + ": " + field.key +
                                             " must be >= 0");
        }
        break;
      case JobField::Kind::kIntLimit:
        if (job.*(field.count) < 0) {
          return util::Status::invalid_input(where + ": " + field.key +
                                             " must be >= 0");
        }
        break;
      default:
        break;
    }
  }
  return util::Status::ok();
}

util::Status validate(const FlowRequest& request) {
  if (request.jobs.empty()) {
    return util::Status::invalid_input("request has no jobs");
  }
  if (request.workers < 0) {
    return util::Status::invalid_input("workers must be >= 0");
  }
  if (request.batch_deadline_seconds < 0.0) {
    return util::Status::invalid_input("batch_deadline must be >= 0");
  }
  if (request.resume && request.journal_path.empty()) {
    return util::Status::invalid_input("resume requires a journal path");
  }
  std::set<std::string> labels;
  for (std::size_t i = 0; i < request.jobs.size(); ++i) {
    const JobRequest& job = request.jobs[i];
    const std::string where = "job " + std::to_string(i);
    if (util::Status status = validate_job(job, where); !status.is_ok()) {
      return status;
    }
    // Rows and the resume journal are keyed by label; a duplicate would
    // alias them (same check the engine enforces for journaled batches).
    if (!labels.insert(effective_label(job)).second) {
      return util::Status::invalid_input(
          where + ": duplicate job label '" + effective_label(job) + "'");
    }
  }
  return util::Status::ok();
}

std::string serialize_request(const FlowRequest& request) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kRequestSchema);
  json.key("workers").value(request.workers);
  json.key("batch_deadline").value(request.batch_deadline_seconds);
  json.key("keep_going").value(request.keep_going);
  json.key("journal").value(request.journal_path);
  json.key("resume").value(request.resume);
  json.key("journal_sync").value(engine::journal_sync_name(request.journal_sync));
  // Trace context is optional on the wire: untraced requests serialize to
  // their exact pre-telemetry bytes (absent = old behavior).
  if (!request.trace_id.empty()) json.key("trace_id").value(request.trace_id);
  if (request.sent_unix_us != 0) {
    json.key("sent_unix_us")
        .value(static_cast<long long>(request.sent_unix_us));
  }
  json.key("jobs").begin_array();
  for (const JobRequest& job : request.jobs) write_job_request(json, job);
  json.end_array();
  json.end_object();
  return json.str();
}

std::optional<FlowRequest> parse_request(std::string_view line,
                                         std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<FlowRequest> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::string parse_error;
  const auto doc = util::parse_json(line, &parse_error);
  if (!doc || !doc->is_object()) {
    return fail("request is not a JSON object: " + parse_error);
  }
  {
    const util::JsonValue* schema = doc->find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->string_value != kRequestSchema) {
      return fail(std::string("request schema mismatch (want ") +
                  kRequestSchema + ")");
    }
  }

  FlowRequest request;
  std::string field_error;
  if (!read_int(*doc, "workers", &request.workers, &field_error) ||
      !read_number(*doc, "batch_deadline", &request.batch_deadline_seconds,
                   &field_error) ||
      !read_bool(*doc, "keep_going", &request.keep_going, &field_error) ||
      !read_string(*doc, "journal", &request.journal_path, &field_error) ||
      !read_bool(*doc, "resume", &request.resume, &field_error)) {
    return fail(field_error);
  }
  {
    // Optional (older clients omit it); an unknown name is an error, not a
    // silent durability downgrade.
    std::string sync_name = engine::journal_sync_name(request.journal_sync);
    if (!read_string(*doc, "journal_sync", &sync_name, &field_error)) {
      return fail(field_error);
    }
    const auto sync = engine::parse_journal_sync(sync_name);
    if (!sync) return fail("unknown journal_sync '" + sync_name + "'");
    request.journal_sync = *sync;
  }
  {
    double sent = 0.0;
    if (!read_string(*doc, "trace_id", &request.trace_id, &field_error) ||
        !read_number(*doc, "sent_unix_us", &sent, &field_error)) {
      return fail(field_error);
    }
    request.sent_unix_us = static_cast<std::int64_t>(sent);
  }

  const util::JsonValue* jobs = doc->find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    return fail("field 'jobs' must be an array");
  }
  request.jobs.reserve(jobs->array.size());
  for (std::size_t i = 0; i < jobs->array.size(); ++i) {
    const util::JsonValue& entry = jobs->array[i];
    const std::string where = "job " + std::to_string(i) + ": ";
    JobRequest job;
    if (!read_job_request(entry, &job, &field_error)) {
      return fail(where + field_error);
    }
    request.jobs.push_back(std::move(job));
  }
  return request;
}

util::Status to_flow_jobs(const FlowRequest& request,
                          std::vector<engine::FlowJob>* jobs) {
  jobs->clear();
  jobs->reserve(request.jobs.size());
  for (const JobRequest& source : request.jobs) {
    engine::FlowJob job;
    job.label = source.label;
    job.arm = source.arm;
    job.trace_id = request.trace_id;
    job.span_id = source.span_id;
    if (!source.benchmark.empty()) {
      const auto spec = netlist::spec_for(source.benchmark, source.scaled);
      if (!spec) {
        return util::Status::invalid_input("unknown benchmark " +
                                           source.benchmark);
      }
      job.spec = *spec;
    } else if (source.spec.has_value()) {
      job.spec = *source.spec;
    } else {
      std::ifstream in(source.netlist_path);
      if (!in) {
        return util::Status::invalid_input("cannot open " +
                                           source.netlist_path);
      }
      std::string parse_error;
      const auto parsed = netlist::read_netlist(in, &parse_error);
      if (!parsed) {
        return util::Status::invalid_input("parse error in " +
                                           source.netlist_path + ": " +
                                           parse_error);
      }
      job.netlist = *parsed;
    }
    job.config.options.style = source.style;
    job.config.options.consider_dvi = source.consider_dvi;
    job.config.options.consider_tpl = source.consider_tpl;
    job.config.dvi_method = source.dvi_method;
    job.config.ilp_time_limit_seconds = source.ilp_limit_seconds;
    job.config.degrade_dvi_on_timeout = source.degrade_dvi;
    if (source.partitions > 0) job.config.options.partitions = source.partitions;
    job.deadline_seconds = source.deadline_seconds;
    jobs->push_back(std::move(job));
  }
  return util::Status::ok();
}

engine::EngineOptions engine_options(const FlowRequest& request) {
  engine::EngineOptions options;
  options.num_workers = request.workers;
  options.batch_deadline_seconds = request.batch_deadline_seconds;
  options.fail_fast = !request.keep_going;
  options.journal_path = request.journal_path;
  options.resume = request.resume;
  options.journal_sync = request.journal_sync;
  return options;
}

std::string response_row_line_raw(std::string_view outcome_json,
                                  std::size_t done, std::size_t total,
                                  const char* cache,
                                  const std::string& trace_id,
                                  const std::string& span_id) {
  std::string line = std::string("{\"schema\":\"") + kResponseSchema +
                     "\",\"type\":\"row\",\"done\":" + std::to_string(done) +
                     ",\"total\":" + std::to_string(total);
  // Trace context lives in the framing only; the outcome bytes below are
  // spliced verbatim, so a traced row's journal payload is byte-identical
  // to an untraced one's.
  if (!trace_id.empty()) {
    line += ",\"trace_id\":\"" + util::JsonWriter::escape(trace_id) + '"';
  }
  if (!span_id.empty()) {
    line += ",\"span_id\":\"" + util::JsonWriter::escape(span_id) + '"';
  }
  if (cache != nullptr) {
    line += ",\"cache\":\"";
    line += cache;
    line += '"';
  }
  line += ",\"outcome\":";
  line += outcome_json;
  line += '}';
  return line;
}

std::string response_row_line(const engine::JobOutcome& outcome,
                              std::size_t done, std::size_t total,
                              const char* cache, const std::string& trace_id,
                              const std::string& span_id) {
  // The outcome payload is the journal record verbatim; splicing the
  // pre-serialized object keeps the two schemas byte-identical by
  // construction.
  return response_row_line_raw(engine::journal_line(outcome), done, total,
                               cache, trace_id, span_id);
}

std::string response_summary_line(const ResponseSummary& summary) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kResponseSchema);
  json.key("type").value("batch");
  json.key("jobs").value(summary.jobs);
  json.key("ok").value(summary.ok);
  json.key("degraded").value(summary.degraded);
  json.key("failed").value(summary.failed);
  json.key("timed_out").value(summary.timed_out);
  json.key("cancelled").value(summary.cancelled);
  json.key("resumed").value(summary.resumed);
  json.key("cache_hits").value(summary.cache_hits);
  json.key("cache_misses").value(summary.cache_misses);
  json.key("workers").value(summary.workers);
  json.key("wall_seconds").value(summary.wall_seconds);
  if (!summary.trace_id.empty()) {
    json.key("trace_id").value(summary.trace_id);
    json.key("recv_unix_us").value(static_cast<long long>(summary.recv_unix_us));
    json.key("sent_unix_us").value(static_cast<long long>(summary.sent_unix_us));
  }
  json.end_object();
  return json.str();
}

std::string response_summary_line(const engine::BatchResult& batch,
                                  int workers, double wall_seconds) {
  ResponseSummary summary;
  summary.jobs = batch.outcomes.size();
  summary.ok = batch.ok;
  summary.degraded = batch.degraded;
  summary.failed = batch.failed;
  summary.timed_out = batch.timed_out;
  summary.cancelled = batch.cancelled;
  summary.resumed = batch.resumed;
  summary.workers = workers;
  summary.wall_seconds = wall_seconds;
  return response_summary_line(summary);
}

std::string response_error_line(const util::Status& error) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kResponseSchema);
  json.key("type").value("error");
  json.key("code").value(util::status_code_name(error.code()));
  json.key("message").value(error.message());
  json.end_object();
  return json.str();
}

std::optional<ResponseEvent> parse_response_line(std::string_view line,
                                                 std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<ResponseEvent> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::string parse_error;
  const auto doc = util::parse_json(line, &parse_error);
  if (!doc || !doc->is_object()) {
    return fail("response is not a JSON object: " + parse_error);
  }
  const util::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value != kResponseSchema) {
    return fail(std::string("response schema mismatch (want ") +
                kResponseSchema + ")");
  }
  const util::JsonValue* type = doc->find("type");
  if (type == nullptr || !type->is_string()) {
    return fail("field 'type' must be a string");
  }

  ResponseEvent event;
  std::string field_error;
  if (type->string_value == "row") {
    event.kind = ResponseEvent::Kind::kRow;
    double done = 0.0;
    double total = 0.0;
    if (!read_number(*doc, "done", &done, &field_error) ||
        !read_number(*doc, "total", &total, &field_error)) {
      return fail(field_error);
    }
    event.done = static_cast<std::size_t>(done);
    event.total = static_cast<std::size_t>(total);
    // Optional: absent on rows from pre-cache daemons and non-cache paths.
    if (!read_string(*doc, "cache", &event.cache, &field_error) ||
        !read_string(*doc, "trace_id", &event.trace_id, &field_error) ||
        !read_string(*doc, "span_id", &event.span_id, &field_error)) {
      return fail(field_error);
    }
    const util::JsonValue* outcome = doc->find("outcome");
    if (outcome == nullptr) return fail("row without an 'outcome' object");
    auto parsed = engine::parse_outcome_object(*outcome, &field_error);
    if (!parsed) return fail(field_error);
    event.outcome = std::move(*parsed);
    return event;
  }
  if (type->string_value == "batch") {
    event.kind = ResponseEvent::Kind::kBatch;
    double jobs = 0, ok = 0, degraded = 0, failed = 0, timed_out = 0,
           cancelled = 0, resumed = 0;
    // Cache counters are optional (absent = 0): summaries written before
    // the result cache existed must keep parsing.
    double cache_hits = 0, cache_misses = 0;
    if (!read_number(*doc, "cache_hits", &cache_hits, &field_error) ||
        !read_number(*doc, "cache_misses", &cache_misses, &field_error)) {
      return fail(field_error);
    }
    event.cache_hits = static_cast<std::size_t>(cache_hits);
    event.cache_misses = static_cast<std::size_t>(cache_misses);
    if (!read_number(*doc, "jobs", &jobs, &field_error) ||
        !read_number(*doc, "ok", &ok, &field_error) ||
        !read_number(*doc, "degraded", &degraded, &field_error) ||
        !read_number(*doc, "failed", &failed, &field_error) ||
        !read_number(*doc, "timed_out", &timed_out, &field_error) ||
        !read_number(*doc, "cancelled", &cancelled, &field_error) ||
        !read_number(*doc, "resumed", &resumed, &field_error) ||
        !read_int(*doc, "workers", &event.workers, &field_error) ||
        !read_number(*doc, "wall_seconds", &event.wall_seconds,
                     &field_error)) {
      return fail(field_error);
    }
    // Trace context is optional like the cache counters: untraced and
    // pre-telemetry summaries parse with empty/zero context.
    double recv_us = 0, sent_us = 0;
    if (!read_string(*doc, "trace_id", &event.trace_id, &field_error) ||
        !read_number(*doc, "recv_unix_us", &recv_us, &field_error) ||
        !read_number(*doc, "sent_unix_us", &sent_us, &field_error)) {
      return fail(field_error);
    }
    event.recv_unix_us = static_cast<std::int64_t>(recv_us);
    event.sent_unix_us = static_cast<std::int64_t>(sent_us);
    event.jobs = static_cast<std::size_t>(jobs);
    event.ok = static_cast<std::size_t>(ok);
    event.degraded = static_cast<std::size_t>(degraded);
    event.failed = static_cast<std::size_t>(failed);
    event.timed_out = static_cast<std::size_t>(timed_out);
    event.cancelled = static_cast<std::size_t>(cancelled);
    event.resumed = static_cast<std::size_t>(resumed);
    return event;
  }
  if (type->string_value == "delta") {
    event.kind = ResponseEvent::Kind::kDelta;
    if (!read_int(*doc, "nets_ripped", &event.nets_ripped, &field_error) ||
        !read_int(*doc, "nets_untouched", &event.nets_untouched,
                  &field_error) ||
        !read_int(*doc, "nets_total", &event.nets_total, &field_error) ||
        !read_int(*doc, "changes", &event.changes, &field_error) ||
        !read_number(*doc, "load_seconds", &event.load_seconds, &field_error) ||
        !read_string(*doc, "base_fingerprint", &event.base_fingerprint,
                     &field_error) ||
        !read_string(*doc, "trace_id", &event.trace_id, &field_error)) {
      return fail(field_error);
    }
    if (const util::JsonValue* ids = doc->find("ripped_ids")) {
      if (!ids->is_array()) return fail("field 'ripped_ids' must be an array");
      for (const util::JsonValue& id : ids->array) {
        if (!id.is_number()) {
          return fail("field 'ripped_ids' must hold numbers");
        }
        event.ripped_ids.push_back(static_cast<int>(id.number_value));
      }
    }
    return event;
  }
  if (type->string_value == "error") {
    event.kind = ResponseEvent::Kind::kError;
    std::string code;
    std::string message;
    if (!read_string(*doc, "code", &code, &field_error) ||
        !read_string(*doc, "message", &message, &field_error)) {
      return fail(field_error);
    }
    event.error = util::Status(util::parse_status_code(code), message);
    return event;
  }
  return fail("unknown response type '" + type->string_value + "'");
}

DispatchResult dispatch(const FlowRequest& request,
                        const DispatchOptions& options) {
  DispatchResult out;
  out.status = validate(request);
  if (!out.status.is_ok()) return out;

  std::vector<engine::FlowJob> jobs;
  out.status = to_flow_jobs(request, &jobs);
  if (!out.status.is_ok()) return out;
  if (options.keep_router) {
    for (engine::FlowJob& job : jobs) job.keep_router = true;
  }

  engine::EngineOptions engine_opts = engine_options(request);
  if (options.max_workers > 0 &&
      (engine_opts.num_workers == 0 ||
       engine_opts.num_workers > options.max_workers)) {
    engine_opts.num_workers = options.max_workers;
  }
  engine_opts.on_job_done = options.on_job_done;
  engine_opts.cancel = options.cancel;
  engine_opts.drain = options.drain;
  engine_opts.executor = options.executor;

  out.workers = engine::FlowEngine::resolve_workers(engine_opts.num_workers);
  util::Timer wall;
  out.batch = engine::FlowEngine(engine_opts).run(std::move(jobs));
  out.wall_seconds = wall.seconds();
  return out;
}

}  // namespace sadp::api
