#include "api/flow_delta.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "engine/flow_engine.hpp"
#include "netlist/bench_gen.hpp"
#include "netlist/io.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace sadp::api {

namespace {

// "absent = default, mistyped = error" readers, same semantics as the
// flow-request parser's.
bool read_string(const util::JsonValue& doc, const char* key, std::string* out,
                 std::string* error) {
  const util::JsonValue* v = doc.find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) {
    *error = std::string("field '") + key + "' must be a string";
    return false;
  }
  *out = v->string_value;
  return true;
}

bool read_int(const util::JsonValue& doc, const char* key, int* out,
              std::string* error) {
  const util::JsonValue* v = doc.find(key);
  if (v == nullptr) return true;
  if (!v->is_number()) {
    *error = std::string("field '") + key + "' must be a number";
    return false;
  }
  *out = static_cast<int>(v->number_value);
  return true;
}

/// A point as the wire's two-element [x,y] array.
bool read_point(const util::JsonValue& value, grid::Point* out,
                std::string* error, const char* what) {
  if (!value.is_array() || value.array.size() != 2 ||
      !value.array[0].is_number() || !value.array[1].is_number()) {
    *error = std::string(what) + " must be a [x,y] number pair";
    return false;
  }
  out->x = static_cast<std::int32_t>(value.array[0].number_value);
  out->y = static_cast<std::int32_t>(value.array[1].number_value);
  return true;
}

void write_point(util::JsonWriter& json, grid::Point p) {
  json.begin_array();
  json.value(p.x);
  json.value(p.y);
  json.end_array();
}

bool read_change(const util::JsonValue& doc, core::EcoChange* change,
                 std::string* error) {
  if (!doc.is_object()) {
    *error = "change must be an object";
    return false;
  }
  const util::JsonValue* op = doc.find("op");
  if (op == nullptr || !op->is_string()) {
    *error = "change without a string 'op' member";
    return false;
  }
  const auto kind = core::parse_eco_change_kind(op->string_value);
  if (!kind) {
    *error = "unknown change op '" + op->string_value + "'";
    return false;
  }
  change->kind = *kind;
  switch (change->kind) {
    case core::EcoChange::Kind::kMovePin: {
      int net = grid::kNoNet;
      if (!read_int(doc, "net", &net, error) ||
          !read_int(doc, "pin", &change->pin, error)) {
        return false;
      }
      change->net = net;
      const util::JsonValue* to = doc.find("to");
      if (to == nullptr) {
        *error = "move_pin without a 'to' member";
        return false;
      }
      return read_point(*to, &change->to, error, "field 'to'");
    }
    case core::EcoChange::Kind::kRemoveNet: {
      int net = grid::kNoNet;
      if (!read_int(doc, "net", &net, error)) return false;
      change->net = net;
      return true;
    }
    case core::EcoChange::Kind::kAddNet: {
      if (!read_string(doc, "name", &change->name, error)) return false;
      const util::JsonValue* pins = doc.find("pins");
      if (pins == nullptr || !pins->is_array()) {
        *error = "add_net without a 'pins' array";
        return false;
      }
      for (const util::JsonValue& entry : pins->array) {
        grid::Point p{};
        if (!read_point(entry, &p, error, "add_net pin")) return false;
        change->pins.push_back(p);
      }
      return true;
    }
    case core::EcoChange::Kind::kAddBlockage: {
      const util::JsonValue* rect = doc.find("rect");
      if (rect == nullptr || !rect->is_array() || rect->array.size() != 4) {
        *error = "add_blockage without a [x0,y0,x1,y1] 'rect'";
        return false;
      }
      for (const util::JsonValue& coord : rect->array) {
        if (!coord.is_number()) {
          *error = "field 'rect' must hold numbers";
          return false;
        }
      }
      change->rect_lo.x = static_cast<std::int32_t>(rect->array[0].number_value);
      change->rect_lo.y = static_cast<std::int32_t>(rect->array[1].number_value);
      change->rect_hi.x = static_cast<std::int32_t>(rect->array[2].number_value);
      change->rect_hi.y = static_cast<std::int32_t>(rect->array[3].number_value);
      return true;
    }
  }
  *error = "unreachable change kind";
  return false;
}

void write_change(util::JsonWriter& json, const core::EcoChange& change) {
  json.begin_object();
  json.key("op").value(core::eco_change_kind_name(change.kind));
  switch (change.kind) {
    case core::EcoChange::Kind::kMovePin:
      json.key("net").value(change.net);
      json.key("pin").value(change.pin);
      json.key("to");
      write_point(json, change.to);
      break;
    case core::EcoChange::Kind::kRemoveNet:
      json.key("net").value(change.net);
      break;
    case core::EcoChange::Kind::kAddNet:
      if (!change.name.empty()) json.key("name").value(change.name);
      json.key("pins").begin_array();
      for (const grid::Point p : change.pins) write_point(json, p);
      json.end_array();
      break;
    case core::EcoChange::Kind::kAddBlockage:
      json.key("rect").begin_array();
      json.value(change.rect_lo.x);
      json.value(change.rect_lo.y);
      json.value(change.rect_hi.x);
      json.value(change.rect_hi.y);
      json.end_array();
      break;
  }
  json.end_object();
}

}  // namespace

util::Status validate_delta(const FlowDeltaRequest& request) {
  if (const util::Status base = validate_job(request.base, "base");
      !base.is_ok()) {
    return base;
  }
  const bool inline_text = !request.base_solution.empty();
  const bool path = !request.base_solution_path.empty();
  if (inline_text == path) {
    return util::Status::invalid_input(
        "delta request needs exactly one of base_solution / "
        "base_solution_path");
  }
  for (std::size_t i = 0; i < request.changes.size(); ++i) {
    const core::EcoChange& change = request.changes[i];
    const std::string where = "change " + std::to_string(i) + ": ";
    switch (change.kind) {
      case core::EcoChange::Kind::kMovePin:
      case core::EcoChange::Kind::kRemoveNet:
        if (change.net < 0) {
          return util::Status::invalid_input(where + "net id must be >= 0");
        }
        if (change.kind == core::EcoChange::Kind::kMovePin && change.pin < 0) {
          return util::Status::invalid_input(where + "pin index must be >= 0");
        }
        break;
      case core::EcoChange::Kind::kAddNet:
        if (change.pins.size() < 2) {
          return util::Status::invalid_input(where +
                                             "add_net needs at least 2 pins");
        }
        break;
      case core::EcoChange::Kind::kAddBlockage:
        break;  // rects are normalized and bounds-checked against the base
    }
  }
  return util::Status::ok();
}

std::string serialize_delta_request(const FlowDeltaRequest& request) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(kDeltaRequestSchema);
  // Trace context mirrors the flow request: omitted entirely when untraced.
  if (!request.trace_id.empty()) {
    json.key("trace_id").value(request.trace_id);
    json.key("sent_unix_us").value(static_cast<long long>(request.sent_unix_us));
  }
  json.key("base");
  write_job_request(json, request.base);
  if (!request.base_solution.empty()) {
    json.key("base_solution").value(request.base_solution);
  }
  if (!request.base_solution_path.empty()) {
    json.key("base_solution_path").value(request.base_solution_path);
  }
  json.key("changes").begin_array();
  for (const core::EcoChange& change : request.changes) {
    write_change(json, change);
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::optional<FlowDeltaRequest> parse_delta_request(std::string_view line,
                                                    std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<FlowDeltaRequest> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  std::string parse_error;
  const auto doc = util::parse_json(line, &parse_error);
  if (!doc || !doc->is_object()) {
    return fail("delta request is not a JSON object: " + parse_error);
  }
  const util::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value != kDeltaRequestSchema) {
    return fail(std::string("delta request schema mismatch (want ") +
                kDeltaRequestSchema + ")");
  }

  FlowDeltaRequest request;
  std::string field_error;
  if (!read_string(*doc, "trace_id", &request.trace_id, &field_error)) {
    return fail(field_error);
  }
  if (const util::JsonValue* sent = doc->find("sent_unix_us");
      sent != nullptr) {
    if (!sent->is_number()) return fail("field 'sent_unix_us' must be a number");
    request.sent_unix_us = static_cast<std::int64_t>(sent->number_value);
  }
  const util::JsonValue* base = doc->find("base");
  if (base == nullptr || !base->is_object()) {
    return fail("field 'base' must be a job object");
  }
  if (!read_job_request(*base, &request.base, &field_error)) {
    return fail("base: " + field_error);
  }
  if (!read_string(*doc, "base_solution", &request.base_solution,
                   &field_error) ||
      !read_string(*doc, "base_solution_path", &request.base_solution_path,
                   &field_error)) {
    return fail(field_error);
  }
  if (const util::JsonValue* changes = doc->find("changes");
      changes != nullptr) {
    if (!changes->is_array()) return fail("field 'changes' must be an array");
    request.changes.reserve(changes->array.size());
    for (std::size_t i = 0; i < changes->array.size(); ++i) {
      core::EcoChange change;
      if (!read_change(changes->array[i], &change, &field_error)) {
        return fail("change " + std::to_string(i) + ": " + field_error);
      }
      request.changes.push_back(std::move(change));
    }
  }
  return request;
}

bool looks_like_delta_line(std::string_view line) noexcept {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  constexpr std::string_view kSchemaKey = "\"schema\"";
  if (line.substr(i, kSchemaKey.size()) != kSchemaKey) return false;
  i += kSchemaKey.size();
  skip_ws();
  if (i >= line.size() || line[i] != ':') return false;
  ++i;
  skip_ws();
  const std::string value = std::string("\"") + kDeltaRequestSchema + '"';
  return line.substr(i, value.size()) == value;
}

void ensure_delta_trace_context(FlowDeltaRequest* request) {
  if (!request->trace_id.empty()) return;
  request->trace_id = mint_trace_id();
  request->sent_unix_us = util::unix_now_us();
  request->base.span_id = mint_trace_id();
}

util::Status load_base_solution(const FlowDeltaRequest& request,
                                std::string* text) {
  if (!request.base_solution.empty()) {
    *text = request.base_solution;
    return util::Status::ok();
  }
  std::ifstream in(request.base_solution_path);
  if (!in) {
    return util::Status::invalid_input("cannot open base solution " +
                                       request.base_solution_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *text = buffer.str();
  return util::Status::ok();
}

std::optional<std::string> delta_cache_key(const FlowDeltaRequest& request,
                                           const std::string& base_text) {
  // Same uncacheable classes as flow requests: a netlist file can change
  // under the same path, and deadline-bearing runs are time-dependent.
  if (!request.base.netlist_path.empty()) return std::nullopt;
  if (request.base.deadline_seconds > 0.0) return std::nullopt;
  FlowDeltaRequest canonical = request;
  canonical.trace_id.clear();
  canonical.sent_unix_us = 0;
  canonical.base.span_id.clear();
  // Content-address the base: the raw solution bytes collapse to one hash,
  // so inline and path transport of the same file hit the same entry.
  char digest[24];
  std::snprintf(digest, sizeof digest, "fnv1a:%016llx",
                static_cast<unsigned long long>(util::fnv1a(base_text)));
  canonical.base_solution = digest;
  canonical.base_solution_path.clear();
  return serialize_delta_request(canonical);
}

std::string delta_payload_suffix(const core::EcoSummary& summary) {
  util::JsonWriter json;
  json.begin_object();
  json.key("nets_ripped").value(summary.nets_ripped);
  json.key("nets_untouched").value(summary.nets_untouched);
  json.key("nets_total").value(summary.nets_total);
  json.key("changes").value(summary.changes);
  json.key("ripped_ids").begin_array();
  for (const grid::NetId id : summary.ripped_ids) {
    json.value(static_cast<int>(id));
  }
  json.end_array();
  json.key("load_seconds").value(summary.load_seconds);
  json.key("base_fingerprint").value(summary.base_fingerprint);
  json.end_object();
  // Strip the braces: the suffix is spliced after the framing members.
  const std::string object = json.str();
  return object.substr(1, object.size() - 2);
}

std::string response_delta_line_raw(std::string_view payload_suffix,
                                    const std::string& trace_id) {
  std::string line = std::string("{\"schema\":\"") + kResponseSchema +
                     "\",\"type\":\"delta\"";
  // Trace framing precedes the payload so a cache hit replays the stored
  // payload bytes verbatim (same contract as row lines).
  if (!trace_id.empty()) {
    line += ",\"trace_id\":\"" + util::JsonWriter::escape(trace_id) + '"';
  }
  line += ',';
  line += payload_suffix;
  line += '}';
  return line;
}

std::string response_delta_line(const core::EcoSummary& summary,
                                const std::string& trace_id) {
  return response_delta_line_raw(delta_payload_suffix(summary), trace_id);
}

namespace {

std::vector<std::string> split_specs(const std::string& text, char sep) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t at = text.find(sep, start);
    const std::string token =
        text.substr(start, at == std::string::npos ? at : at - start);
    if (!token.empty()) tokens.push_back(token);
    if (at == std::string::npos) break;
    start = at + 1;
  }
  return tokens;
}

bool parse_spec_ints(const std::string& csv, std::size_t expect,
                     std::vector<int>* out) {
  out->clear();
  for (const std::string& token : split_specs(csv, ',')) {
    char* end = nullptr;
    const long value = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') return false;
    out->push_back(static_cast<int>(value));
  }
  return expect == 0 || out->size() == expect;
}

}  // namespace

util::Status parse_change_specs(const std::string& move_pins,
                                const std::string& removes,
                                const std::string& add_nets,
                                const std::string& blockages,
                                std::vector<core::EcoChange>* changes) {
  std::vector<int> values;
  for (const std::string& spec : split_specs(move_pins, ';')) {
    if (!parse_spec_ints(spec, 4, &values)) {
      return util::Status::invalid_input("bad move-pin spec '" + spec +
                                         "' (want net,pin,x,y)");
    }
    core::EcoChange change;
    change.kind = core::EcoChange::Kind::kMovePin;
    change.net = values[0];
    change.pin = values[1];
    change.to = {values[2], values[3]};
    changes->push_back(std::move(change));
  }
  for (const std::string& spec : split_specs(removes, ';')) {
    if (!parse_spec_ints(spec, 1, &values)) {
      return util::Status::invalid_input("bad remove-net spec '" + spec +
                                         "' (want a net id)");
    }
    core::EcoChange change;
    change.kind = core::EcoChange::Kind::kRemoveNet;
    change.net = values[0];
    changes->push_back(std::move(change));
  }
  for (const std::string& spec : split_specs(add_nets, ';')) {
    // name:x,y,x,y,...  (flat coordinate list, >= 2 pins)
    const std::size_t colon = spec.find(':');
    core::EcoChange change;
    change.kind = core::EcoChange::Kind::kAddNet;
    const std::string coords =
        colon == std::string::npos ? spec : spec.substr(colon + 1);
    if (colon != std::string::npos) change.name = spec.substr(0, colon);
    if (!parse_spec_ints(coords, 0, &values) || values.size() < 4 ||
        values.size() % 2 != 0) {
      return util::Status::invalid_input("bad add-net spec '" + spec +
                                         "' (want name:x,y,x,y,...)");
    }
    for (std::size_t i = 0; i < values.size(); i += 2) {
      change.pins.push_back({values[i], values[i + 1]});
    }
    changes->push_back(std::move(change));
  }
  for (const std::string& spec : split_specs(blockages, ';')) {
    if (!parse_spec_ints(spec, 4, &values)) {
      return util::Status::invalid_input("bad add-blockage spec '" + spec +
                                         "' (want x0,y0,x1,y1)");
    }
    core::EcoChange change;
    change.kind = core::EcoChange::Kind::kAddBlockage;
    change.rect_lo = {values[0], values[1]};
    change.rect_hi = {values[2], values[3]};
    changes->push_back(std::move(change));
  }
  return util::Status::ok();
}

DeltaDispatchResult dispatch_delta(const FlowDeltaRequest& request,
                                   const DeltaDispatchOptions& options) {
  DeltaDispatchResult out;
  util::Timer wall;
  out.status = validate_delta(request);
  if (!out.status.is_ok()) return out;

  std::string base_text;
  out.status = load_base_solution(request, &base_text);
  if (!out.status.is_ok()) return out;
  std::string parse_error;
  const auto solution = core::parse_solution(base_text, &parse_error);
  if (!solution) {
    out.status =
        util::Status::invalid_input("malformed base solution: " + parse_error);
    return out;
  }

  engine::JobOutcome& outcome = out.outcome;
  outcome.label = effective_label(request.base);
  outcome.arm = request.base.arm;
  outcome.style = request.base.style;
  outcome.dvi_method = request.base.dvi_method;

  // Same observability envelope as an engine job: tagged logs plus one
  // enclosing span carrying the propagated trace context.
  const util::ScopedLogTag log_tag(outcome.label);
  obs::Span job_span(
      obs::tracing_enabled() ? "eco:" + outcome.label : std::string());
  if (!request.trace_id.empty()) job_span.set_str("trace_id", request.trace_id);
  if (!request.base.span_id.empty()) {
    job_span.set_str("span_id", request.base.span_id);
  }

  const util::CancelToken token =
      request.base.deadline_seconds > 0.0
          ? options.cancel.child_with_deadline(request.base.deadline_seconds)
          : options.cancel;

  core::FlowConfig config;
  config.options.style = request.base.style;
  config.options.consider_dvi = request.base.consider_dvi;
  config.options.consider_tpl = request.base.consider_tpl;
  config.dvi_method = request.base.dvi_method;
  config.ilp_time_limit_seconds = request.base.ilp_limit_seconds;
  config.degrade_dvi_on_timeout = request.base.degrade_dvi;
  config.options.cancel = token;

  util::Timer total;
  try {
    util::Timer generate;
    netlist::PlacedNetlist local;
    const netlist::PlacedNetlist* base = nullptr;
    if (!request.base.benchmark.empty()) {
      const auto spec =
          netlist::spec_for(request.base.benchmark, request.base.scaled);
      if (!spec) {
        out.status = util::Status::invalid_input("unknown benchmark " +
                                                 request.base.benchmark);
        return out;
      }
      obs::Span span("generate");
      local = netlist::generate(*spec);  // throws FlowError on bad specs
      base = &local;
    } else if (request.base.spec.has_value()) {
      obs::Span span("generate");
      local = netlist::generate(*request.base.spec);
      base = &local;
    } else {
      std::ifstream in(request.base.netlist_path);
      if (!in) {
        out.status = util::Status::invalid_input("cannot open " +
                                                 request.base.netlist_path);
        return out;
      }
      const auto parsed = netlist::read_netlist(in, &parse_error);
      if (!parsed) {
        out.status = util::Status::invalid_input(
            "parse error in " + request.base.netlist_path + ": " + parse_error);
        return out;
      }
      local = *parsed;
      base = &local;
    }
    outcome.metrics.generate_seconds = generate.seconds();

    core::EcoRun eco;
    const util::Status run =
        core::run_eco_flow(*base, *solution, request.changes, config, &eco);
    if (!run.is_ok()) {
      // Base/changes inconsistent with each other: a request-shaped error,
      // surfaced like validation (error line, no row).
      out.status = run;
      return out;
    }
    out.summary = std::move(eco.summary);
    outcome.result = std::move(eco.flow.result);
    if (options.keep_router) {
      outcome.router = std::move(eco.flow.router);
      outcome.dvi_inserted_at = std::move(eco.flow.dvi_inserted_at);
    }
    outcome.error = eco.flow.status;
    if (!eco.flow.status.is_ok()) {
      outcome.status = engine::JobStatus::kFailed;  // reclassified below
    } else if (eco.flow.dvi_degraded) {
      outcome.status = engine::JobStatus::kDegraded;
    }

    const core::RoutingReport& routing = outcome.result.routing;
    outcome.metrics.route_seconds = routing.route_seconds;
    outcome.metrics.initial_routing_seconds = routing.initial_routing_seconds;
    outcome.metrics.congestion_rr_seconds = routing.congestion_rr_seconds;
    outcome.metrics.tpl_rr_seconds = routing.tpl_rr_seconds;
    outcome.metrics.coloring_seconds = routing.coloring_seconds;
    outcome.metrics.dvi_seconds = outcome.result.dvi.seconds;
    outcome.metrics.rr_iterations = routing.rr_iterations;
    outcome.metrics.queue_peak = routing.queue_peak;
    outcome.metrics.maze_pops = routing.maze_pops;
    outcome.metrics.maze_relaxations = routing.maze_relaxations;
    outcome.metrics.maze_searches = routing.maze_searches;
    outcome.metrics.heap_reuse = routing.heap_reuse;
    outcome.metrics.fvp_cache_hits = routing.fvp_cache_hits;
    outcome.metrics.maze_pops_p50 = routing.maze_pops_p50;
    outcome.metrics.maze_pops_p95 = routing.maze_pops_p95;
    outcome.metrics.maze_pops_max = routing.maze_pops_max;
  } catch (const FlowError& e) {
    outcome.status = engine::JobStatus::kFailed;
    outcome.error = e.status();
  } catch (const std::exception& e) {
    outcome.status = engine::JobStatus::kFailed;
    outcome.error = util::Status::internal(e.what());
  } catch (...) {
    outcome.status = engine::JobStatus::kFailed;
    outcome.error = util::Status::internal("unknown exception");
  }

  if (outcome.status != engine::JobStatus::kOk &&
      outcome.status != engine::JobStatus::kDegraded) {
    if (token.stop_requested()) {
      outcome.status = token.reason() == util::StopReason::kDeadline
                           ? engine::JobStatus::kTimeout
                           : engine::JobStatus::kCancelled;
      if (outcome.error.is_ok()) outcome.error = token.status("eco");
    } else if (outcome.error.code() == util::StatusCode::kCancelled) {
      outcome.status = engine::JobStatus::kCancelled;
    }
  }
  outcome.metrics.total_seconds = total.seconds();
  out.wall_seconds = wall.seconds();
  return out;
}

}  // namespace sadp::api
