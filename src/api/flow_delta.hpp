// Incremental ECO re-route request layer (schema sadp.flow_delta.v1).
//
// The service's second first-class verb, alongside sadp.flow_request.v1:
// "here is the prior solution, here is what changed".  A delta request
// carries a *base* job (the same job object a flow request carries — flow
// knobs plus the base netlist source), the base routed solution (inline
// canonical text, or a path readable where the request is dispatched), and
// a change list (add/remove net, move pin, add blockage rect).  The engine
// side warm-starts from the base (core/eco.hpp), rips up only the nets
// intersecting the dirty region, and streams back the existing response
// schema — one "row" line with the full journal payload, one extra "delta"
// summary line (nets ripped / untouched, base fingerprint), then the
// "batch" line.
//
// Wire framing: one JSON line, "schema" first, so the server's line demux
// can route it without a full parse (see looks_like_delta_line):
//
//   {"schema":"sadp.flow_delta.v1"[,"trace_id":...,"sent_unix_us":...],
//    "base":{<job object>},
//    "base_solution":"solution ...\n..." | "base_solution_path":"/path",
//    "changes":[{"op":"move_pin","net":3,"pin":1,"to":[10,12]},
//               {"op":"add_blockage","rect":[4,4,9,9]},
//               {"op":"remove_net","net":7},
//               {"op":"add_net","name":"n","pins":[[2,2],[8,3]]}]}
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/flow_api.hpp"
#include "core/eco.hpp"

namespace sadp::api {

inline constexpr const char* kDeltaRequestSchema = "sadp.flow_delta.v1";

/// One ECO re-route request.
struct FlowDeltaRequest {
  /// The base job: flow knobs plus the base netlist source (exactly one of
  /// benchmark / spec / netlist_path, like any job).  label/arm/span_id key
  /// the response row exactly as in a flow request.
  JobRequest base;
  /// The base routed solution: inline canonical text (core/solution_io
  /// format), or a path readable where the request is dispatched.  Exactly
  /// one must be set.
  std::string base_solution;
  std::string base_solution_path;
  std::vector<core::EcoChange> changes;
  /// Trace context, same contract as FlowRequest (absent = untraced).
  std::string trace_id;
  std::int64_t sent_unix_us = 0;
};

/// Structural validation: a valid base job, exactly one base-solution
/// source, and per-change sanity that needs no netlist (op-specific members
/// present; deep validation against the base happens in apply_eco_changes).
[[nodiscard]] util::Status validate_delta(const FlowDeltaRequest& request);

/// Parse the command-line change-spec grammar shared by `sadp_route
/// --delta` and `sadp_route_client --delta`.  Each argument holds zero or
/// more ';'-separated entries:
///   move_pins  "net,pin,x,y"
///   removes    "net"
///   add_nets   "name:x,y,x,y,..."  (flat coords, >= 2 pins; name optional)
///   blockages  "x0,y0,x1,y1"
/// Parsed changes append to `*changes`; kInvalidInput names the offending
/// spec.  Purely lexical — id/bounds validation happens in validate_delta
/// and apply_eco_changes.
[[nodiscard]] util::Status parse_change_specs(
    const std::string& move_pins, const std::string& removes,
    const std::string& add_nets, const std::string& blockages,
    std::vector<core::EcoChange>* changes);

/// One line of JSON (no trailing newline), "schema" member first.
[[nodiscard]] std::string serialize_delta_request(
    const FlowDeltaRequest& request);

/// Inverse of serialize_delta_request; same forward-compatibility rules as
/// parse_request (unknown members ignored, known members type-checked).
[[nodiscard]] std::optional<FlowDeltaRequest> parse_delta_request(
    std::string_view line, std::string* error = nullptr);

/// Cheap routing test for the server's line demultiplexer: does this line
/// lead with the delta schema?  Delta producers always serialize "schema"
/// first, so flow requests (same leading key, different value) and control
/// lines (leading "type") never match.
[[nodiscard]] bool looks_like_delta_line(std::string_view line) noexcept;

/// Fill in trace context on a delta request that has none (fresh trace_id,
/// a span_id for the base job, send timestamp); a request already carrying
/// a trace_id is left untouched.  Mirrors ensure_trace_context.
void ensure_delta_trace_context(FlowDeltaRequest* request);

/// Resolve the base solution to its text: the inline text verbatim, or the
/// file's contents.  kInvalidInput when the path cannot be read.
[[nodiscard]] util::Status load_base_solution(const FlowDeltaRequest& request,
                                              std::string* text);

/// Result-cache key for a delta request, or nullopt when the request is
/// uncacheable (base job reads a netlist file or carries a deadline — same
/// rules as flow-request caching).  The key is the canonical delta JSON
/// with the trace context stripped and the base-solution text replaced by
/// its fnv1a-64 hash, so it is content-addressed in the base solution and
/// insensitive to how the base was transported (inline vs path).
[[nodiscard]] std::optional<std::string> delta_cache_key(
    const FlowDeltaRequest& request, const std::string& base_text);

// ---------------------------------------------------------------------------
// The "delta" response line.

/// {"schema":"sadp.flow_response.v1","type":"delta"[,"trace_id":...],
///  "nets_ripped":N,"nets_untouched":N,"nets_total":N,"changes":N,
///  "ripped_ids":[...],"load_seconds":S,"base_fingerprint":"hex"}
/// Like rows, the trace context lives before the payload so a cache hit can
/// replay the stored payload bytes verbatim under fresh framing.
[[nodiscard]] std::string response_delta_line(const core::EcoSummary& summary,
                                              const std::string& trace_id = {});

/// Wrap a stored delta payload (the bytes from `"nets_ripped"` onward, as
/// produced by delta_payload_suffix) in fresh framing — the cache-replay
/// path, mirroring response_row_line_raw.
[[nodiscard]] std::string response_delta_line_raw(
    std::string_view payload_suffix, const std::string& trace_id = {});

/// The framing-independent payload suffix of a delta line (for caching).
[[nodiscard]] std::string delta_payload_suffix(const core::EcoSummary& summary);

// ---------------------------------------------------------------------------
// Dispatch: the in-process ECO entry point (CLI --delta, daemon verb).

struct DeltaDispatchOptions {
  /// Request-scoped cancellation (client disconnect, Ctrl-C).
  util::CancelToken cancel;
  /// Retain the router in the outcome (local validation only).
  bool keep_router = false;
};

struct DeltaDispatchResult {
  /// kInvalidInput when the request, base solution or change list is
  /// malformed; nothing was executed and `outcome` is empty.
  util::Status status;
  /// The single job's outcome (row payload), mirroring engine jobs: label,
  /// status (ok/degraded/cancelled/timeout/failed), result, metrics.
  engine::JobOutcome outcome;
  core::EcoSummary summary;
  double wall_seconds = 0.0;
};

/// validate + load base + run_eco_flow, with engine-grade fault isolation
/// (exceptions become a failed outcome, cancellation reclassifies).  The
/// CLI and the daemon share this exactly as they share api::dispatch.
[[nodiscard]] DeltaDispatchResult dispatch_delta(
    const FlowDeltaRequest& request, const DeltaDispatchOptions& options = {});

}  // namespace sadp::api
