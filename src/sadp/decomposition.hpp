// SADP layout decomposition: synthesize core (mandrel) and cut/trim masks
// for a routed metal layer and DRC them (paper Section I, Figs. 1 and 4).
//
// Scope note (see DESIGN.md "Substitutions"): this is a *behavioural* mask
// model, not a lithography simulator.  Straight wires and decomposable
// turns synthesize into DRC-clean core and cut/trim masks; a forbidden turn
// synthesizes into the sub-minimum cut/trim configuration that makes it
// undecomposable, which the geometric DRC engine then reports.  The module
// exists so the router's "no forbidden turns" guarantee can be validated
// end-to-end against actual mask geometry, and to power the Fig. 4 demo.
#pragma once

#include <vector>

#include "grid/colored_grid.hpp"
#include "grid/geometry.hpp"
#include "grid/turns.hpp"
#include "sadp/mask.hpp"
#include "sadp/rules.hpp"

namespace sadp::litho {

/// The metal pattern of one layer: occupied grid points with the directions
/// their wires leave in.
struct LayerPattern {
  int layer = 2;
  std::vector<std::pair<grid::Point, grid::ArmMask>> points;
};

/// Decomposition result of one layer.
struct LayerDecomposition {
  Mask core;          ///< mandrel patterns
  Mask assist;        ///< second mask: cut (SIM) or trim (SID) patterns
  /// DRC violations found on the synthesized masks; empty iff the pattern
  /// is decomposable under this model.
  std::vector<DrcViolation> violations;
  /// Number of non-preferred turns (decomposable with degradation).
  int degradations = 0;
  /// Number of forbidden turns encountered.
  int forbidden_turns = 0;
};

/// Classify all L-turns present in the pattern against the rule table.
/// Returns (preferred, non_preferred, forbidden) counts.
struct TurnCensus {
  int preferred = 0;
  int non_preferred = 0;
  int forbidden = 0;
};
[[nodiscard]] TurnCensus census_turns(const LayerPattern& pattern,
                                      const grid::TurnRules& rules);

/// Synthesize and DRC the two masks of one metal layer.
[[nodiscard]] LayerDecomposition decompose_layer(const LayerPattern& pattern,
                                                 grid::SadpStyle style,
                                                 const DesignRules& rules =
                                                     DesignRules::default_rules());

}  // namespace sadp::litho
