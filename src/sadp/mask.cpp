#include "sadp/mask.hpp"

#include <algorithm>

namespace sadp::litho {

int axis_gap(int a_lo, int a_hi, int b_lo, int b_hi) noexcept {
  return std::max(b_lo - a_hi, a_lo - b_hi);
}

int rect_spacing(const MaskRect& a, const MaskRect& b) noexcept {
  const int gx = axis_gap(a.lo_x, a.hi_x, b.lo_x, b.hi_x);
  const int gy = axis_gap(a.lo_y, a.hi_y, b.lo_y, b.hi_y);
  if (gx < 0 && gy < 0) return 0;            // overlap
  if (gx >= 0 && gy >= 0) return std::max(gx, gy);  // diagonal: corner rule
  return std::max(gx, gy);
}

bool rects_overlap(const MaskRect& a, const MaskRect& b) noexcept {
  return axis_gap(a.lo_x, a.hi_x, b.lo_x, b.hi_x) < 0 &&
         axis_gap(a.lo_y, a.hi_y, b.lo_y, b.hi_y) < 0;
}

std::string DrcViolation::to_string() const {
  auto rect_str = [](const MaskRect& r) {
    return "(" + std::to_string(r.lo_x) + "," + std::to_string(r.lo_y) + ")-(" +
           std::to_string(r.hi_x) + "," + std::to_string(r.hi_y) + ")";
  };
  if (kind == Kind::kMinWidth) return "min-width " + rect_str(a);
  return "min-spacing " + rect_str(a) + " vs " + rect_str(b);
}

namespace {

/// Union-find used to group touching/overlapping rects into one pattern.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<DrcViolation> check_mask(const Mask& mask, int min_width,
                                     int min_spacing) {
  std::vector<DrcViolation> out;
  const auto& rects = mask.rects;

  for (const auto& r : rects) {
    if (r.empty()) continue;
    if (std::min(r.width(), r.height()) < min_width) {
      out.push_back({DrcViolation::Kind::kMinWidth, r, {}});
    }
  }

  // Group shapes that touch (spacing 0) into single patterns; spacing rules
  // apply only between different patterns.  O(n^2) pair scan sorted by x to
  // prune; mask sizes in this code base are small enough.
  std::vector<std::size_t> order(rects.size());
  for (std::size_t i = 0; i < rects.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rects[a].lo_x < rects[b].lo_x;
  });

  UnionFind groups(rects.size());
  for (std::size_t ii = 0; ii < order.size(); ++ii) {
    const auto i = order[ii];
    for (std::size_t jj = ii + 1; jj < order.size(); ++jj) {
      const auto j = order[jj];
      if (rects[j].lo_x - rects[i].hi_x >= min_spacing) break;
      if (rect_spacing(rects[i], rects[j]) == 0) groups.unite(i, j);
    }
  }
  for (std::size_t ii = 0; ii < order.size(); ++ii) {
    const auto i = order[ii];
    for (std::size_t jj = ii + 1; jj < order.size(); ++jj) {
      const auto j = order[jj];
      if (rects[j].lo_x - rects[i].hi_x >= min_spacing) break;
      if (groups.find(i) == groups.find(j)) continue;
      const int spacing = rect_spacing(rects[i], rects[j]);
      if (spacing > 0 && spacing < min_spacing) {
        out.push_back({DrcViolation::Kind::kMinSpacing, rects[i], rects[j]});
      }
    }
  }
  return out;
}

}  // namespace sadp::litho
