#include "sadp/decomposition.hpp"

#include <algorithm>

namespace sadp::litho {

namespace {

using grid::ArmMask;
using grid::Dir;
using grid::Point;

constexpr int kScale = kMaskUnitsPerTrack;

/// Mask-space center of a grid point.
[[nodiscard]] Point mask_center(Point p) { return {p.x * kScale, p.y * kScale}; }

/// Rect of half-width w/2 around the segment from grid point p one track in
/// direction d (the wire stick of one arm).
[[nodiscard]] MaskRect arm_rect(Point p, Dir d, int width) {
  const Point c = mask_center(p);
  const Point s = grid::step(d);
  const int half = width / 2;
  MaskRect r;
  r.lo_x = std::min(c.x, c.x + s.x * kScale) - half;
  r.hi_x = std::max(c.x, c.x + s.x * kScale) + half;
  r.lo_y = std::min(c.y, c.y + s.y * kScale) - half;
  r.hi_y = std::max(c.y, c.y + s.y * kScale) + half;
  return r;
}

/// Small square at the outside corner of a turn, displaced diagonally.
[[nodiscard]] MaskRect corner_rect(Point p, grid::TurnKind kind, int size,
                                   int diag_offset) {
  const Point c = mask_center(p);
  int sx = 1, sy = 1;
  switch (kind) {
    case grid::TurnKind::kNE: sx = -1; sy = -1; break;  // outside = SW
    case grid::TurnKind::kNW: sx = +1; sy = -1; break;
    case grid::TurnKind::kSE: sx = -1; sy = +1; break;
    case grid::TurnKind::kSW: sx = +1; sy = +1; break;
  }
  const int cx = c.x + sx * diag_offset;
  const int cy = c.y + sy * diag_offset;
  return MaskRect{cx - size / 2, cy - size / 2, cx + size - size / 2,
                  cy + size - size / 2};
}

/// Rect just beyond a line end (the end-cut / end-trim shape).
[[nodiscard]] MaskRect line_end_rect(Point p, Dir open_dir, int width) {
  const Point c = mask_center(p);
  const Point s = grid::step(open_dir);
  const int half = width / 2;
  // A width x width square centered one half-pitch beyond the wire tip.
  const int cx = c.x + s.x * (half + width);
  const int cy = c.y + s.y * (half + width);
  return MaskRect{cx - half, cy - half, cx + half, cy + half};
}

/// Whether a wire arm lies on a mandrel-defining track under the parity
/// model (see grid/colored_grid.hpp).
[[nodiscard]] bool arm_on_mandrel(Point p, Dir d, grid::SadpStyle style) {
  const bool horizontal = grid::is_horizontal(d);
  if (style == grid::SadpStyle::kSid) {
    return grid::ColoredGrid::on_mandrel_track(p, horizontal);
  }
  // SIM: mandrels sit in the middle of grey panels; a wire prints as the
  // spacer of the mandrel in the adjacent panel, which exists (without an
  // assist feature) when the track index has mandrel parity.
  return horizontal ? (p.y & 1) == 0 : (p.x & 1) == 0;
}

}  // namespace

TurnCensus census_turns(const LayerPattern& pattern, const grid::TurnRules& rules) {
  TurnCensus census;
  for (const auto& [p, arms] : pattern.points) {
    for (Dir h : {Dir::kEast, Dir::kWest}) {
      if (!grid::has_arm(arms, h)) continue;
      for (Dir v : {Dir::kNorth, Dir::kSouth}) {
        if (!grid::has_arm(arms, v)) continue;
        switch (rules.classify(p, grid::turn_kind(h, v))) {
          case grid::TurnClass::kPreferred: ++census.preferred; break;
          case grid::TurnClass::kNonPreferred: ++census.non_preferred; break;
          case grid::TurnClass::kForbidden: ++census.forbidden; break;
        }
      }
    }
  }
  return census;
}

LayerDecomposition decompose_layer(const LayerPattern& pattern,
                                   grid::SadpStyle style,
                                   const DesignRules& rules) {
  LayerDecomposition out;
  out.core.name = "core";
  out.assist.name = (style == grid::SadpStyle::kSid ||
                   style == grid::SadpStyle::kSimTrim)
                      ? "trim"
                      : "cut";

  const grid::TurnRules turn_rules = grid::TurnRules::for_style(style);
  const int w = rules.wire_width;

  for (const auto& [p, arms] : pattern.points) {
    // Landing pad at every occupied point (pins and via landings included);
    // arm sticks below extend it along the wires.
    const Point c = mask_center(p);
    out.core.rects.push_back(
        MaskRect{c.x - w / 2, c.y - w / 2, c.x + w - w / 2, c.y + w - w / 2});

    // Mandrel sticks for arms on mandrel tracks; spacer-derived arms do not
    // draw core shapes.  The core mask is what SADP actually exposes first.
    for (Dir d : grid::kPlanarDirs) {
      if (!grid::has_arm(arms, d)) continue;
      if (arm_on_mandrel(p, d, style)) out.core.rects.push_back(arm_rect(p, d, w));
    }

    // Line ends: a wire that terminates at this point needs an end cut /
    // trim shape beyond the tip.  Corners and junctions (points with both a
    // horizontal and a vertical arm) are not line ends — their second-mask
    // geometry comes from the turn synthesis below.
    const bool has_h =
        grid::has_arm(arms, Dir::kEast) || grid::has_arm(arms, Dir::kWest);
    const bool has_v =
        grid::has_arm(arms, Dir::kNorth) || grid::has_arm(arms, Dir::kSouth);
    if (arms != 0 && !(has_h && has_v)) {
      for (Dir d : grid::kPlanarDirs) {
        const bool wire_runs_this_axis = grid::is_horizontal(d) ? has_h : has_v;
        if (wire_runs_this_axis && !grid::has_arm(arms, d)) {
          out.assist.rects.push_back(line_end_rect(p, d, w));
        }
      }
    }

    // Turns: synthesize the corner's second-mask geometry.
    for (Dir h : {Dir::kEast, Dir::kWest}) {
      if (!grid::has_arm(arms, h)) continue;
      for (Dir v : {Dir::kNorth, Dir::kSouth}) {
        if (!grid::has_arm(arms, v)) continue;
        const grid::TurnKind kind = grid::turn_kind(h, v);
        switch (turn_rules.classify(p, kind)) {
          case grid::TurnClass::kPreferred:
            // The mandrel itself turns; no extra second-mask shape needed.
            break;
          case grid::TurnClass::kNonPreferred:
            // Decomposable with a spacer-rounding patch: one legal corner
            // cut/trim shape.
            out.assist.rects.push_back(corner_rect(p, kind, w, kScale));
            ++out.degradations;
            break;
          case grid::TurnClass::kForbidden:
            // Undecomposable: the corner would require two second-mask
            // shapes at sub-minimum spacing.  Synthesize exactly that so the
            // geometric DRC reports the violation.
            out.assist.rects.push_back(corner_rect(p, kind, w, kScale));
            out.assist.rects.push_back(
                corner_rect(p, kind, w, kScale + w + rules.min_mask_spacing - 1));
            ++out.forbidden_turns;
            break;
        }
      }
    }
  }

  auto core_violations =
      check_mask(out.core, rules.min_mask_width, rules.min_mask_spacing);
  auto assist_violations =
      check_mask(out.assist, rules.min_mask_width, rules.min_mask_spacing);
  out.violations = std::move(core_violations);
  out.violations.insert(out.violations.end(), assist_violations.begin(),
                        assist_violations.end());
  return out;
}

}  // namespace sadp::litho
