// SADP design rules (paper Section I / II).
//
// Mask geometry is expressed in *mask units*: one routing track pitch equals
// 4 mask units, so the wire width and the spacer width (both half a pitch)
// are 2 units and all synthesized shapes have integer coordinates.
#pragma once

namespace sadp::litho {

inline constexpr int kMaskUnitsPerTrack = 4;

/// Rule set for one SADP process.
struct DesignRules {
  /// Drawn wire width (= spacer width in SIM), in mask units.
  int wire_width = 2;
  /// Minimum width of any core-mask (mandrel) pattern.
  int min_mask_width = 2;
  /// Minimum spacing between two patterns of the same mask (core-core or
  /// cut-cut / trim-trim), in mask units.
  int min_mask_spacing = 2;

  [[nodiscard]] static DesignRules default_rules() { return DesignRules{}; }
};

}  // namespace sadp::litho
