// Rectilinear mask geometry: rectangles, merging, and pairwise design-rule
// checks.  Shapes live in mask units (see rules.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sadp::litho {

/// Closed-open axis-aligned rectangle [lo_x, hi_x) x [lo_y, hi_y).
struct MaskRect {
  int lo_x = 0;
  int lo_y = 0;
  int hi_x = 0;
  int hi_y = 0;

  [[nodiscard]] int width() const noexcept { return hi_x - lo_x; }
  [[nodiscard]] int height() const noexcept { return hi_y - lo_y; }
  [[nodiscard]] bool empty() const noexcept { return width() <= 0 || height() <= 0; }

  friend constexpr auto operator<=>(const MaskRect&, const MaskRect&) = default;
};

/// Gap between two rectangles along one axis (negative when overlapping).
[[nodiscard]] int axis_gap(int a_lo, int a_hi, int b_lo, int b_hi) noexcept;

/// Euclidean-style spacing between rectangles: 0 when they touch/overlap.
/// For rectilinear DRC we use the max of per-axis gaps when the projections
/// are disjoint in both axes (corner-to-corner), otherwise the gap of the
/// disjoint axis.
[[nodiscard]] int rect_spacing(const MaskRect& a, const MaskRect& b) noexcept;

[[nodiscard]] bool rects_overlap(const MaskRect& a, const MaskRect& b) noexcept;

/// One mask layer: a bag of rectangles (possibly overlapping; overlapping
/// same-mask shapes merge optically and are legal).
struct Mask {
  std::string name;
  std::vector<MaskRect> rects;
};

/// A design-rule violation found by check_mask().
struct DrcViolation {
  enum class Kind { kMinWidth, kMinSpacing } kind = Kind::kMinWidth;
  MaskRect a{};
  MaskRect b{};  ///< second shape for spacing violations

  [[nodiscard]] std::string to_string() const;
};

/// Check min-width of every rect and min-spacing between every pair of
/// non-touching rects of the mask.  Touching/overlapping rects are treated
/// as one pattern (no spacing requirement between them).
[[nodiscard]] std::vector<DrcViolation> check_mask(const Mask& mask, int min_width,
                                                   int min_spacing);

}  // namespace sadp::litho
