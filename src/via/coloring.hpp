// Graph coloring for via-layer TPL decomposition.
//
//  * welsh_powell(): the greedy 3-colorability check of the paper (Section
//    III-D, [35]) — vertices in non-increasing degree order, each takes the
//    smallest mask color not used by an already-colored conflicting via.
//  * exact 3-coloring by backtracking, used by the tests, the wheel-pattern
//    demo (Fig. 11), and the DVI exact solver's feasibility oracle.
#pragma once

#include <optional>
#include <vector>

#include "via/decomp_graph.hpp"

namespace sadp::via {

inline constexpr int kNumTplColors = 3;
inline constexpr int kUncolored = -1;

/// Result of a (possibly partial) coloring attempt.
struct ColoringResult {
  /// Per-vertex color 0..2, or kUncolored.
  std::vector<int> color;
  /// Indices of vertices left uncolored.
  std::vector<int> uncolored;

  [[nodiscard]] bool complete() const noexcept { return uncolored.empty(); }
};

/// Greedy Welsh-Powell coloring with kNumTplColors colors.  Vertices that
/// cannot take any of the three colors are left uncolored (they become the
/// "#UV" uncolorable via count of the paper's tables when this is used as
/// the final check).
[[nodiscard]] ColoringResult welsh_powell(const DecompGraph& graph);

/// As above, but only vertices with color[v] == kUncolored on entry are
/// (re)colored; pre-colored vertices are fixed.  Used by the DVI heuristic,
/// which pre-colors existing vias and later colors inserted redundant vias.
[[nodiscard]] ColoringResult welsh_powell_extend(const DecompGraph& graph,
                                                 std::vector<int> color);

/// Exact 3-coloring by backtracking over each connected component with a
/// highest-degree-first order.  Returns std::nullopt when the graph is not
/// 3-colorable.  `budget` bounds the number of backtracking steps (guards
/// against pathological inputs; practical via graphs are nearly planar and
/// color in linear time).
[[nodiscard]] std::optional<std::vector<int>> exact_three_coloring(
    const DecompGraph& graph, std::size_t budget = 10'000'000);

/// True when `graph` is 3-colorable (exact, within budget; falls back to
/// "false" on budget exhaustion, which is conservative for the router).
[[nodiscard]] bool three_colorable(const DecompGraph& graph,
                                   std::size_t budget = 10'000'000);

/// Validate that `color` is a proper coloring (ignoring uncolored vertices).
[[nodiscard]] bool is_proper_coloring(const DecompGraph& graph,
                                      const std::vector<int>& color);

}  // namespace sadp::via
