#include "via/coloring.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace sadp::via {

namespace {

/// Vertices ordered by non-increasing degree (Welsh-Powell order), ties by
/// index for determinism.
std::vector<int> degree_order(const DecompGraph& graph) {
  std::vector<int> order(static_cast<std::size_t>(graph.num_vertices()));
  for (int v = 0; v < graph.num_vertices(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.degree(a) > graph.degree(b);
  });
  return order;
}

/// Smallest color in [0, kNumTplColors) unused among colored neighbors, or
/// kUncolored.
int smallest_free_color(const DecompGraph& graph, const std::vector<int>& color,
                        int v) {
  std::array<bool, kNumTplColors> used{};
  for (int u : graph.neighbors(v)) {
    if (color[u] != kUncolored) used[static_cast<std::size_t>(color[u])] = true;
  }
  for (int c = 0; c < kNumTplColors; ++c) {
    if (!used[static_cast<std::size_t>(c)]) return c;
  }
  return kUncolored;
}

}  // namespace

ColoringResult welsh_powell(const DecompGraph& graph) {
  return welsh_powell_extend(
      graph, std::vector<int>(static_cast<std::size_t>(graph.num_vertices()),
                              kUncolored));
}

ColoringResult welsh_powell_extend(const DecompGraph& graph,
                                   std::vector<int> color) {
  assert(static_cast<int>(color.size()) == graph.num_vertices());
  ColoringResult result;
  for (int v : degree_order(graph)) {
    if (color[v] != kUncolored) continue;
    color[v] = smallest_free_color(graph, color, v);
    if (color[v] == kUncolored) result.uncolored.push_back(v);
  }
  std::sort(result.uncolored.begin(), result.uncolored.end());
  result.color = std::move(color);
  return result;
}

namespace {

/// Backtracking 3-coloring of one component (vertex list), highest degree
/// first.  Returns false on failure or budget exhaustion.
bool color_component(const DecompGraph& graph, const std::vector<int>& comp,
                     std::vector<int>& color, std::size_t& budget) {
  std::vector<int> order = comp;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.degree(a) > graph.degree(b);
  });

  const int n = static_cast<int>(order.size());
  std::vector<int> tentative(color);

  auto recurse = [&](auto&& self, int i) -> bool {
    if (i == n) return true;
    if (budget == 0) return false;
    const int v = order[static_cast<std::size_t>(i)];
    for (int c = 0; c < kNumTplColors; ++c) {
      --budget;
      bool ok = true;
      for (int u : graph.neighbors(v)) {
        if (tentative[u] == c) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      tentative[v] = c;
      if (self(self, i + 1)) return true;
      tentative[v] = kUncolored;
      if (budget == 0) return false;
    }
    return false;
  };

  if (!recurse(recurse, 0)) return false;
  for (int v : comp) color[v] = tentative[v];
  return true;
}

}  // namespace

std::optional<std::vector<int>> exact_three_coloring(const DecompGraph& graph,
                                                     std::size_t budget) {
  std::vector<int> color(static_cast<std::size_t>(graph.num_vertices()), kUncolored);
  for (const auto& comp : graph.components()) {
    if (!color_component(graph, comp, color, budget)) return std::nullopt;
  }
  return color;
}

bool three_colorable(const DecompGraph& graph, std::size_t budget) {
  return exact_three_coloring(graph, budget).has_value();
}

bool is_proper_coloring(const DecompGraph& graph, const std::vector<int>& color) {
  if (static_cast<int>(color.size()) != graph.num_vertices()) return false;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if (color[v] == kUncolored) continue;
    if (color[v] < 0 || color[v] >= kNumTplColors) return false;
    for (int u : graph.neighbors(v)) {
      if (u > v && color[u] == color[v]) return false;
    }
  }
  return true;
}

}  // namespace sadp::via
