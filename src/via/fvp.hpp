// Forbidden via patterns (paper Section II-D, Fig. 7).
//
// Two vias of the same via layer cannot receive the same TPL mask color when
// their center-to-center distance is below the same-color via pitch.  The
// paper states the pitch is slightly larger than twice the track pitch; the
// unique conflict predicate consistent with the paper's FVP classification
// rules is
//
//     conflict(a, b)  <=>  0 < sq_dist(a, b) < 8
//
// i.e. every pair of vias inside a common 3x3 subregion conflicts *except*
// vias on exactly diagonally opposite corners (distance 2*sqrt(2)).
//
// A *forbidden via pattern* (FVP) is the via pattern of a 3x3 subregion
// whose conflict graph is not 3-colorable.  Classifying a 3x3 pattern is
// O(1) via a 512-entry lookup table built once by brute-force 3-coloring;
// the table provably matches the paper's four classification rules (see
// tests/test_fvp.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "grid/geometry.hpp"

namespace sadp::via {

/// 9-bit occupancy mask of a 3x3 subregion; bit (dy*3 + dx) is the cell at
/// offset (dx, dy) from the window origin (lower-left corner).
using WindowMask = std::uint16_t;

inline constexpr int kWindowSize = 3;
inline constexpr int kWindowCells = 9;
inline constexpr int kNumWindowMasks = 512;

/// Bit index of offset (dx, dy), 0 <= dx, dy < 3.
[[nodiscard]] constexpr int window_bit(int dx, int dy) noexcept {
  return dy * kWindowSize + dx;
}

/// TPL same-color-pitch conflict predicate between two via locations of the
/// same via layer (in grid units).
[[nodiscard]] constexpr bool vias_conflict(grid::Point a, grid::Point b) noexcept {
  const auto d = grid::sq_dist(a, b);
  return d > 0 && d < 8;
}

/// True when the 3x3 via pattern `mask` is *not* 3-colorable, i.e. is a
/// forbidden via pattern.  O(1) table lookup.
[[nodiscard]] bool is_fvp(WindowMask mask) noexcept;

/// Ground-truth 3-colorability of a window pattern by brute force; used to
/// build the lookup table and by the property tests.
[[nodiscard]] bool window_three_colorable_bruteforce(WindowMask mask) noexcept;

/// The paper's rule-based classification (Section II-D, rules 1-4); exposed
/// so tests can prove it equals the brute-force table on all 512 patterns.
[[nodiscard]] bool is_fvp_by_paper_rules(WindowMask mask) noexcept;

/// Chromatic number (via brute force, up to 9 colors) of a window pattern;
/// used in diagnostics and the Fig. 7 demo.
[[nodiscard]] int window_chromatic_number(WindowMask mask) noexcept;

/// An FVP occurrence: the window origin (lower-left cell) on a via layer.
struct FvpWindow {
  int via_layer = 0;
  grid::Point origin{};

  friend constexpr auto operator<=>(const FvpWindow&, const FvpWindow&) = default;
};

}  // namespace sadp::via
