#include "via/fvp.hpp"

#include <bit>

namespace sadp::via {

namespace {

/// Offsets of the cells set in a mask.
std::vector<grid::Point> mask_cells(WindowMask mask) {
  std::vector<grid::Point> cells;
  for (int dy = 0; dy < kWindowSize; ++dy) {
    for (int dx = 0; dx < kWindowSize; ++dx) {
      if (mask & (WindowMask{1} << window_bit(dx, dy))) cells.push_back({dx, dy});
    }
  }
  return cells;
}

/// Backtracking k-colorability of the conflict graph of the cells.
bool k_colorable(const std::vector<grid::Point>& cells, int k) {
  const int n = static_cast<int>(cells.size());
  if (n == 0) return true;
  std::vector<int> color(static_cast<std::size_t>(n), -1);

  // Depth-first assignment; cells are few (<= 9), so no ordering heuristics
  // are needed.
  auto assign = [&](auto&& self, int i) -> bool {
    if (i == n) return true;
    for (int c = 0; c < k; ++c) {
      bool ok = true;
      for (int j = 0; j < i; ++j) {
        if (color[j] == c && vias_conflict(cells[i], cells[j])) {
          ok = false;
          break;
        }
      }
      if (ok) {
        color[i] = c;
        if (self(self, i + 1)) return true;
        color[i] = -1;
      }
    }
    return false;
  };
  return assign(assign, 0);
}

struct FvpTable {
  std::array<bool, kNumWindowMasks> fvp{};
  FvpTable() {
    for (int mask = 0; mask < kNumWindowMasks; ++mask) {
      fvp[static_cast<std::size_t>(mask)] =
          !window_three_colorable_bruteforce(static_cast<WindowMask>(mask));
    }
  }
};

const FvpTable& fvp_table() {
  static const FvpTable table;
  return table;
}

}  // namespace

bool window_three_colorable_bruteforce(WindowMask mask) noexcept {
  return k_colorable(mask_cells(mask), 3);
}

bool is_fvp(WindowMask mask) noexcept { return fvp_table().fvp[mask]; }

bool is_fvp_by_paper_rules(WindowMask mask) noexcept {
  const int count = std::popcount(mask);
  if (count >= 6) return true;   // rule 1
  if (count <= 3) return false;  // rule 4

  constexpr WindowMask kCornerNE = WindowMask{1} << window_bit(2, 2);
  constexpr WindowMask kCornerNW = WindowMask{1} << window_bit(0, 2);
  constexpr WindowMask kCornerSE = WindowMask{1} << window_bit(2, 0);
  constexpr WindowMask kCornerSW = WindowMask{1} << window_bit(0, 0);
  constexpr WindowMask kAllCorners = kCornerNE | kCornerNW | kCornerSE | kCornerSW;

  if (count == 5) {
    // Rule 2: not an FVP only when 4 of the 5 vias are on the four corners.
    return (mask & kAllCorners) != kAllCorners;
  }
  // Rule 3 (count == 4): not an FVP only when 2 vias are on diagonally
  // opposite corners.
  const bool diag_a = (mask & (kCornerSW | kCornerNE)) == (kCornerSW | kCornerNE);
  const bool diag_b = (mask & (kCornerNW | kCornerSE)) == (kCornerNW | kCornerSE);
  return !(diag_a || diag_b);
}

int window_chromatic_number(WindowMask mask) noexcept {
  const auto cells = mask_cells(mask);
  for (int k = 0; k <= kWindowCells; ++k) {
    if (k_colorable(cells, k)) return k;
  }
  return kWindowCells;
}

}  // namespace sadp::via
