#include "via/decomp_graph.hpp"

#include <algorithm>
#include <unordered_map>

namespace sadp::via {

namespace {
/// Key for a spatial hash bucket.
[[nodiscard]] std::int64_t cell_key(int layer, grid::Point p) {
  return (static_cast<std::int64_t>(layer) << 48) ^
         (static_cast<std::int64_t>(static_cast<std::uint32_t>(p.x)) << 24) ^
         static_cast<std::int64_t>(static_cast<std::uint32_t>(p.y));
}
}  // namespace

DecompGraph DecompGraph::build(const ViaDb& db, int via_layer) {
  DecompGraph g;
  g.add_vertices_for_layer(db, via_layer);
  g.connect_conflicts();
  return g;
}

DecompGraph DecompGraph::build_all_layers(const ViaDb& db) {
  DecompGraph g;
  for (int v = 1; v <= db.num_via_layers(); ++v) g.add_vertices_for_layer(db, v);
  g.connect_conflicts();
  return g;
}

DecompGraph DecompGraph::from_points(const std::vector<grid::Point>& points) {
  DecompGraph g;
  g.add_vertices(points, 1);
  g.connect_conflicts();
  return g;
}

DecompGraph DecompGraph::from_located(
    const std::vector<std::pair<grid::Point, int>>& located) {
  DecompGraph g;
  for (const auto& [p, layer] : located) {
    g.point_.push_back(p);
    g.layer_.push_back(layer);
    g.adj_.emplace_back();
  }
  g.connect_conflicts();
  return g;
}

void DecompGraph::add_vertices_for_layer(const ViaDb& db, int via_layer) {
  add_vertices(db.locations(via_layer), via_layer);
}

void DecompGraph::add_vertices(const std::vector<grid::Point>& points, int via_layer) {
  for (const auto& p : points) {
    point_.push_back(p);
    layer_.push_back(via_layer);
    adj_.emplace_back();
  }
}

void DecompGraph::connect_conflicts() {
  // Rebuild all edges from scratch: hash every vertex, then probe the 5x5
  // neighborhood (conflict radius < sqrt(8) < 3).
  for (auto& a : adj_) a.clear();
  num_edges_ = 0;

  std::unordered_map<std::int64_t, int> at;
  at.reserve(point_.size() * 2);
  for (int v = 0; v < num_vertices(); ++v) at[cell_key(layer_[v], point_[v])] = v;

  for (int v = 0; v < num_vertices(); ++v) {
    const grid::Point p = point_[v];
    for (int dy = -2; dy <= 2; ++dy) {
      for (int dx = -2; dx <= 2; ++dx) {
        const grid::Point q{p.x + dx, p.y + dy};
        if (!vias_conflict(p, q)) continue;
        const auto it = at.find(cell_key(layer_[v], q));
        if (it == at.end()) continue;
        const int u = it->second;
        if (u > v) {
          adj_[v].push_back(u);
          adj_[u].push_back(v);
          ++num_edges_;
        }
      }
    }
  }
}

std::vector<std::vector<int>> DecompGraph::components() const {
  std::vector<std::vector<int>> comps;
  std::vector<char> seen(static_cast<std::size_t>(num_vertices()), 0);
  std::vector<int> stack;
  for (int s = 0; s < num_vertices(); ++s) {
    if (seen[s]) continue;
    comps.emplace_back();
    stack.push_back(s);
    seen[s] = 1;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      comps.back().push_back(v);
      for (int u : adj_[v]) {
        if (!seen[u]) {
          seen[u] = 1;
          stack.push_back(u);
        }
      }
    }
  }
  return comps;
}

}  // namespace sadp::via
