#include "via/via_db.hpp"

#include <string>

#include "util/status.hpp"

namespace sadp::via {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw FlowError(util::StatusCode::kInternal, what);
}

std::string point_str(grid::Point p) {
  return "(" + std::to_string(p.x) + "," + std::to_string(p.y) + ")";
}

}  // namespace

ViaDb::ViaDb(int width, int height, int num_via_layers)
    : width_(width), height_(height), layers_(num_via_layers) {
  if (width <= 0 || height <= 0 || num_via_layers < 1) {
    throw FlowError(util::StatusCode::kInvalidInput,
                    "ViaDb needs positive dimensions, got " +
                        std::to_string(width) + "x" + std::to_string(height) +
                        " with " + std::to_string(num_via_layers) +
                        " via layers");
  }
  count_.assign(static_cast<std::size_t>(layers_) * width_ * height_, 0);
}

void ViaDb::check_slot(int via_layer, grid::Point p, const char* op) const {
  // These violations are always router bugs, never expected states, so they
  // fail loudly in every build type instead of corrupting the occupancy
  // array (the release-mode fate of the old assert()s).
  if (via_layer < 1 || via_layer > layers_) {
    fail(std::string("ViaDb::") + op + ": via layer " +
         std::to_string(via_layer) + " outside [1," + std::to_string(layers_) +
         "]");
  }
  if (!in_bounds(p)) {
    fail(std::string("ViaDb::") + op + ": point " + point_str(p) +
         " outside " + std::to_string(width_) + "x" + std::to_string(height_) +
         " grid");
  }
}

void ViaDb::add(int via_layer, grid::Point p) {
  check_slot(via_layer, p, "add");
  auto& c = count_[slot(via_layer, p)];
  if (c == 255) {
    fail("ViaDb::add: reference count overflow at layer " +
         std::to_string(via_layer) + " " + point_str(p));
  }
  ++c;
}

void ViaDb::remove(int via_layer, grid::Point p) {
  check_slot(via_layer, p, "remove");
  auto& c = count_[slot(via_layer, p)];
  if (c == 0) {
    fail("ViaDb::remove: no via recorded at layer " +
         std::to_string(via_layer) + " " + point_str(p));
  }
  --c;
}

int ViaDb::occupied_count(int via_layer) const {
  int n = 0;
  const std::size_t base = static_cast<std::size_t>(via_layer - 1) * width_ * height_;
  for (std::size_t i = 0; i < static_cast<std::size_t>(width_) * height_; ++i) {
    if (count_[base + i] > 0) ++n;
  }
  return n;
}

std::vector<grid::Point> ViaDb::locations(int via_layer) const {
  std::vector<grid::Point> out;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      if (has(via_layer, {x, y})) out.push_back({x, y});
    }
  }
  return out;
}

WindowMask ViaDb::window_mask(int via_layer, grid::Point origin) const {
  WindowMask mask = 0;
  for (int dy = 0; dy < kWindowSize; ++dy) {
    for (int dx = 0; dx < kWindowSize; ++dx) {
      const grid::Point q{origin.x + dx, origin.y + dy};
      if (in_bounds(q) && has(via_layer, q)) {
        mask |= WindowMask{1} << window_bit(dx, dy);
      }
    }
  }
  return mask;
}

bool ViaDb::would_create_fvp(int via_layer, grid::Point p) const {
  if (has(via_layer, p)) return in_fvp(via_layer, p);
  for (int oy = p.y - kWindowSize + 1; oy <= p.y; ++oy) {
    for (int ox = p.x - kWindowSize + 1; ox <= p.x; ++ox) {
      WindowMask mask = window_mask(via_layer, {ox, oy});
      mask |= WindowMask{1} << window_bit(p.x - ox, p.y - oy);
      if (is_fvp(mask)) return true;
    }
  }
  return false;
}

bool ViaDb::in_fvp(int via_layer, grid::Point p) const {
  for (int oy = p.y - kWindowSize + 1; oy <= p.y; ++oy) {
    for (int ox = p.x - kWindowSize + 1; ox <= p.x; ++ox) {
      if (window_is_fvp(via_layer, {ox, oy})) return true;
    }
  }
  return false;
}

std::vector<FvpWindow> ViaDb::scan_fvps(int via_layer) const {
  std::vector<FvpWindow> out;
  // Slide the window over every origin whose window intersects the grid;
  // origins may start slightly negative so border vias are covered.
  for (int oy = -kWindowSize + 1; oy < height_; ++oy) {
    for (int ox = -kWindowSize + 1; ox < width_; ++ox) {
      if (window_is_fvp(via_layer, {ox, oy})) {
        out.push_back(FvpWindow{via_layer, {ox, oy}});
      }
    }
  }
  return out;
}

std::vector<FvpWindow> ViaDb::scan_all_fvps() const {
  std::vector<FvpWindow> out;
  for (int v = 1; v <= layers_; ++v) {
    auto layer_fvps = scan_fvps(v);
    out.insert(out.end(), layer_fvps.begin(), layer_fvps.end());
  }
  return out;
}

int ViaDb::conflict_count(int via_layer, grid::Point p) const {
  int n = 0;
  for (int dy = -2; dy <= 2; ++dy) {
    for (int dx = -2; dx <= 2; ++dx) {
      const grid::Point q{p.x + dx, p.y + dy};
      if (!in_bounds(q) || !vias_conflict(p, q)) continue;
      if (has(via_layer, q)) ++n;
    }
  }
  return n;
}

std::vector<grid::Point> ViaDb::conflicting_vias(int via_layer, grid::Point p) const {
  std::vector<grid::Point> out;
  for (int dy = -2; dy <= 2; ++dy) {
    for (int dx = -2; dx <= 2; ++dx) {
      const grid::Point q{p.x + dx, p.y + dy};
      if (!in_bounds(q) || !vias_conflict(p, q)) continue;
      if (has(via_layer, q)) out.push_back(q);
    }
  }
  return out;
}

}  // namespace sadp::via
