#include "via/via_db.hpp"

#include <algorithm>
#include <string>

#include "util/status.hpp"

namespace sadp::via {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw FlowError(util::StatusCode::kInternal, what);
}

std::string point_str(grid::Point p) {
  return "(" + std::to_string(p.x) + "," + std::to_string(p.y) + ")";
}

}  // namespace

ViaDb::ViaDb(int width, int height, int num_via_layers)
    : width_(width),
      height_(height),
      layers_(num_via_layers),
      wwidth_(width + kWindowSize - 1),
      wheight_(height + kWindowSize - 1) {
  if (width <= 0 || height <= 0 || num_via_layers < 1) {
    throw FlowError(util::StatusCode::kInvalidInput,
                    "ViaDb needs positive dimensions, got " +
                        std::to_string(width) + "x" + std::to_string(height) +
                        " with " + std::to_string(num_via_layers) +
                        " via layers");
  }
  count_.assign(static_cast<std::size_t>(layers_) * width_ * height_, 0);
  const std::size_t windows =
      static_cast<std::size_t>(layers_) * wwidth_ * wheight_;
  mask_.assign(windows, 0);
  fvp_pos_.assign(windows, kNotFvp);
}

void ViaDb::check_slot(int via_layer, grid::Point p, const char* op) const {
  // These violations are always router bugs, never expected states, so they
  // fail loudly in every build type instead of corrupting the occupancy
  // array (the release-mode fate of the old assert()s).
  if (via_layer < 1 || via_layer > layers_) {
    fail(std::string("ViaDb::") + op + ": via layer " +
         std::to_string(via_layer) + " outside [1," + std::to_string(layers_) +
         "]");
  }
  if (!in_bounds(p)) {
    fail(std::string("ViaDb::") + op + ": point " + point_str(p) +
         " outside " + std::to_string(width_) + "x" + std::to_string(height_) +
         " grid");
  }
}

FvpWindow ViaDb::window_of(std::size_t wslot_index) const noexcept {
  const std::size_t per_layer = static_cast<std::size_t>(wwidth_) * wheight_;
  const int layer = static_cast<int>(wslot_index / per_layer) + 1;
  const std::size_t rest = wslot_index % per_layer;
  const int oy = static_cast<int>(rest / wwidth_) - (kWindowSize - 1);
  const int ox = static_cast<int>(rest % wwidth_) - (kWindowSize - 1);
  return FvpWindow{layer, {ox, oy}};
}

void ViaDb::update_windows_around(int via_layer, grid::Point p) {
  // The occupancy of cell p flipped: refresh the masks and FVP membership
  // of the 9 windows containing p.  All of them are in wslot range because
  // p is in the grid.
  const bool occupied = count_[slot(via_layer, p)] > 0;
  for (int oy = p.y - kWindowSize + 1; oy <= p.y; ++oy) {
    for (int ox = p.x - kWindowSize + 1; ox <= p.x; ++ox) {
      const std::size_t w = wslot(via_layer, {ox, oy});
      const WindowMask bit = WindowMask{1} << window_bit(p.x - ox, p.y - oy);
      const WindowMask mask =
          occupied ? static_cast<WindowMask>(mask_[w] | bit)
                   : static_cast<WindowMask>(mask_[w] & ~bit);
      mask_[w] = mask;
      const bool fvp_now = is_fvp(mask);
      const bool fvp_was = fvp_pos_[w] != kNotFvp;
      if (fvp_now && !fvp_was) {
        fvp_pos_[w] = static_cast<std::uint32_t>(fvp_list_.size());
        fvp_list_.push_back(static_cast<std::uint32_t>(w));
      } else if (!fvp_now && fvp_was) {
        const std::uint32_t pos = fvp_pos_[w];
        const std::uint32_t moved = fvp_list_.back();
        fvp_list_[pos] = moved;
        fvp_pos_[moved] = pos;
        fvp_list_.pop_back();
        fvp_pos_[w] = kNotFvp;
      }
    }
  }
}

void ViaDb::add(int via_layer, grid::Point p) {
  check_slot(via_layer, p, "add");
  auto& c = count_[slot(via_layer, p)];
  if (c == 255) {
    fail("ViaDb::add: reference count overflow at layer " +
         std::to_string(via_layer) + " " + point_str(p));
  }
  ++c;
  if (c == 1) update_windows_around(via_layer, p);
}

void ViaDb::remove(int via_layer, grid::Point p) {
  check_slot(via_layer, p, "remove");
  auto& c = count_[slot(via_layer, p)];
  if (c == 0) {
    fail("ViaDb::remove: no via recorded at layer " +
         std::to_string(via_layer) + " " + point_str(p));
  }
  --c;
  if (c == 0) update_windows_around(via_layer, p);
}

int ViaDb::occupied_count(int via_layer) const {
  int n = 0;
  const std::size_t base = static_cast<std::size_t>(via_layer - 1) * width_ * height_;
  for (std::size_t i = 0; i < static_cast<std::size_t>(width_) * height_; ++i) {
    if (count_[base + i] > 0) ++n;
  }
  return n;
}

std::vector<grid::Point> ViaDb::locations(int via_layer) const {
  std::vector<grid::Point> out;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      if (has(via_layer, {x, y})) out.push_back({x, y});
    }
  }
  return out;
}

bool ViaDb::would_create_fvp(int via_layer, grid::Point p) const {
  ++fvp_cache_hits_;
  if (has(via_layer, p)) return in_fvp(via_layer, p);
  for (int oy = p.y - kWindowSize + 1; oy <= p.y; ++oy) {
    for (int ox = p.x - kWindowSize + 1; ox <= p.x; ++ox) {
      const WindowMask mask = static_cast<WindowMask>(
          mask_[wslot(via_layer, {ox, oy})] |
          (WindowMask{1} << window_bit(p.x - ox, p.y - oy)));
      if (is_fvp(mask)) return true;
    }
  }
  return false;
}

bool ViaDb::in_fvp(int via_layer, grid::Point p) const {
  ++fvp_cache_hits_;
  for (int oy = p.y - kWindowSize + 1; oy <= p.y; ++oy) {
    for (int ox = p.x - kWindowSize + 1; ox <= p.x; ++ox) {
      if (fvp_pos_[wslot(via_layer, {ox, oy})] != kNotFvp) return true;
    }
  }
  return false;
}

std::vector<FvpWindow> ViaDb::scan_fvps(int via_layer) const {
  std::vector<FvpWindow> out;
  for (const std::uint32_t w : fvp_list_) {
    const FvpWindow window = window_of(w);
    if (window.via_layer == via_layer) out.push_back(window);
  }
  // Deterministic row-major origin order, independent of insertion history.
  std::sort(out.begin(), out.end(), [](const FvpWindow& a, const FvpWindow& b) {
    if (a.origin.y != b.origin.y) return a.origin.y < b.origin.y;
    return a.origin.x < b.origin.x;
  });
  return out;
}

std::vector<FvpWindow> ViaDb::scan_all_fvps() const {
  std::vector<FvpWindow> out;
  out.reserve(fvp_list_.size());
  for (const std::uint32_t w : fvp_list_) out.push_back(window_of(w));
  // Layer-major, then row-major origin: the order of the old full scan.
  std::sort(out.begin(), out.end(), [](const FvpWindow& a, const FvpWindow& b) {
    if (a.via_layer != b.via_layer) return a.via_layer < b.via_layer;
    if (a.origin.y != b.origin.y) return a.origin.y < b.origin.y;
    return a.origin.x < b.origin.x;
  });
  return out;
}

int ViaDb::conflict_count(int via_layer, grid::Point p) const {
  int n = 0;
  for (int dy = -2; dy <= 2; ++dy) {
    for (int dx = -2; dx <= 2; ++dx) {
      const grid::Point q{p.x + dx, p.y + dy};
      if (!in_bounds(q) || !vias_conflict(p, q)) continue;
      if (has(via_layer, q)) ++n;
    }
  }
  return n;
}

std::vector<grid::Point> ViaDb::conflicting_vias(int via_layer, grid::Point p) const {
  std::vector<grid::Point> out;
  for (int dy = -2; dy <= 2; ++dy) {
    for (int dx = -2; dx <= 2; ++dx) {
      const grid::Point q{p.x + dx, p.y + dy};
      if (!in_bounds(q) || !vias_conflict(p, q)) continue;
      if (has(via_layer, q)) out.push_back(q);
    }
  }
  return out;
}

}  // namespace sadp::via
