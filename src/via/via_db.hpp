// Per-via-layer occupancy database used by the TPL machinery.
//
// The routing grid (grid/routing_grid.hpp) tracks which *nets* own each via;
// this database tracks only *where* vias exist per layer, which is all the
// TPL analysis needs, and provides the O(1) FVP queries of the paper.
//
// FVP state is maintained incrementally: every 3x3 window keeps a cached
// 9-bit occupancy mask and its FVP classification, both updated in O(1) on
// add()/remove() (a via touches exactly 9 windows).  On top of the flags an
// index of the currently-FVP windows is maintained with O(1)
// insert/swap-remove, so
//
//  * would placing a via at p create an FVP? (the "blocked via location"
//    test of Algorithm 2 / Fig. 10) is 9 cached-mask table tests,
//  * is the window at `origin` an FVP right now? is one flag load,
//  * which windows are FVPs right now? is O(#FVPs log #FVPs) — an iteration
//    over the maintained index plus a sort into the deterministic row-major
//    order (never a grid scan),
//  * the different-color via location conflict counts feeding the TPLC cost.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/geometry.hpp"
#include "via/fvp.hpp"

namespace sadp::via {

class ViaDb {
 public:
  ViaDb(int width, int height, int num_via_layers);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int num_via_layers() const noexcept { return layers_; }

  [[nodiscard]] bool in_bounds(grid::Point p) const noexcept {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }

  /// Add one via occurrence at (via_layer, p).  Multiple occurrences (e.g.
  /// two congested nets with coincident vias) are reference-counted; the
  /// location reads as occupied while any remain.  Out-of-range layers or
  /// points, count overflow and removal of an absent via throw
  /// sadp::FlowError in every build type (they indicate router bugs that
  /// would otherwise corrupt the occupancy silently in release builds).
  void add(int via_layer, grid::Point p);
  void remove(int via_layer, grid::Point p);

  [[nodiscard]] bool has(int via_layer, grid::Point p) const {
    return count_[slot(via_layer, p)] > 0;
  }

  /// Total number of distinct occupied via locations on a layer.
  [[nodiscard]] int occupied_count(int via_layer) const;

  /// All occupied via locations of a layer.
  [[nodiscard]] std::vector<grid::Point> locations(int via_layer) const;

  /// 9-bit via-occupancy mask of the window with lower-left `origin`.
  /// Cells outside the grid read as empty.  Served from the incremental
  /// per-window cache (windows entirely outside the grid read as 0).
  [[nodiscard]] WindowMask window_mask(int via_layer, grid::Point origin) const {
    return window_in_range(origin) ? mask_[wslot(via_layer, origin)]
                                   : WindowMask{0};
  }

  /// True when the window at `origin` currently holds an FVP.  One cached
  /// flag load.
  [[nodiscard]] bool window_is_fvp(int via_layer, grid::Point origin) const {
    ++fvp_cache_hits_;
    return window_in_range(origin) &&
           fvp_pos_[wslot(via_layer, origin)] != kNotFvp;
  }

  /// True when hypothetically adding a via at (via_layer, p) would make any
  /// 3x3 window containing p an FVP.  This is the "blocked via location"
  /// predicate: during TPL-violation-removal R&R such locations are excluded
  /// from rerouting, and the DVI heuristic refuses insertions that trip it.
  /// Nine cached-mask table tests (no occupancy rescan).
  [[nodiscard]] bool would_create_fvp(int via_layer, grid::Point p) const;

  /// True when the vias currently in some window containing p form an FVP.
  [[nodiscard]] bool in_fvp(int via_layer, grid::Point p) const;

  /// All FVP windows of one layer, in row-major window-origin order.
  /// O(#FVPs log #FVPs) over the maintained index — never a grid scan.
  [[nodiscard]] std::vector<FvpWindow> scan_fvps(int via_layer) const;

  /// All FVP windows over all layers, ordered (layer, row-major origin).
  [[nodiscard]] std::vector<FvpWindow> scan_all_fvps() const;

  /// Number of FVP windows currently alive across all layers (O(1)).
  [[nodiscard]] std::size_t fvp_count() const noexcept {
    return fvp_list_.size();
  }

  /// Perf counter: FVP predicate evaluations served by the incremental
  /// cache (would_create_fvp / window_is_fvp / in_fvp calls).
  [[nodiscard]] std::uint64_t fvp_cache_hits() const noexcept {
    return fvp_cache_hits_;
  }

  /// Number of existing vias within same-color pitch of location p
  /// (excluding a via at p itself).  This is the multiplier of the TPLC
  /// penalty gamma * (#coloring conflicts).
  [[nodiscard]] int conflict_count(int via_layer, grid::Point p) const;

  /// Occupied via locations within same-color pitch of p (the "coloring
  /// conflicts" of the paper), excluding p itself.
  [[nodiscard]] std::vector<grid::Point> conflicting_vias(int via_layer,
                                                          grid::Point p) const;

 private:
  void check_slot(int via_layer, grid::Point p, const char* op) const;
  void update_windows_around(int via_layer, grid::Point p);

  [[nodiscard]] std::size_t slot(int via_layer, grid::Point p) const noexcept {
    return static_cast<std::size_t>(via_layer - 1) * width_ * height_ +
           static_cast<std::size_t>(p.y) * width_ + p.x;
  }

  // Window-origin index space: origins in [-(kWindowSize-1), width-1] x
  // [-(kWindowSize-1), height-1] cover every window that intersects the
  // grid; anything outside is permanently empty.
  [[nodiscard]] bool window_in_range(grid::Point origin) const noexcept {
    return origin.x >= -(kWindowSize - 1) && origin.x < width_ &&
           origin.y >= -(kWindowSize - 1) && origin.y < height_;
  }
  [[nodiscard]] std::size_t wslot(int via_layer, grid::Point origin) const noexcept {
    return static_cast<std::size_t>(via_layer - 1) * wwidth_ * wheight_ +
           static_cast<std::size_t>(origin.y + kWindowSize - 1) * wwidth_ +
           (origin.x + kWindowSize - 1);
  }
  [[nodiscard]] FvpWindow window_of(std::size_t wslot_index) const noexcept;

  static constexpr std::uint32_t kNotFvp = UINT32_MAX;

  int width_;
  int height_;
  int layers_;
  int wwidth_;   ///< width_ + kWindowSize - 1 window origins per row
  int wheight_;  ///< height_ + kWindowSize - 1 window origins per column
  std::vector<std::uint8_t> count_;

  // Incremental FVP state (functions of count_, maintained by add/remove).
  std::vector<WindowMask> mask_;       ///< per-window cached occupancy mask
  std::vector<std::uint32_t> fvp_pos_; ///< index into fvp_list_, or kNotFvp
  std::vector<std::uint32_t> fvp_list_; ///< wslots of the live FVP windows
  mutable std::uint64_t fvp_cache_hits_ = 0;
};

}  // namespace sadp::via
