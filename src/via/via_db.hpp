// Per-via-layer occupancy database used by the TPL machinery.
//
// The routing grid (grid/routing_grid.hpp) tracks which *nets* own each via;
// this database tracks only *where* vias exist per layer, which is all the
// TPL analysis needs, and provides the O(1) FVP queries of the paper:
//
//  * would placing a via at p create an FVP? (the "blocked via location"
//    test of Algorithm 2 / Fig. 10)
//  * which 3x3 windows are FVPs right now? (O(n) full scan; O(1) updates)
//  * the different-color via location conflict counts feeding the TPLC cost.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/geometry.hpp"
#include "via/fvp.hpp"

namespace sadp::via {

class ViaDb {
 public:
  ViaDb(int width, int height, int num_via_layers);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int num_via_layers() const noexcept { return layers_; }

  [[nodiscard]] bool in_bounds(grid::Point p) const noexcept {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }

  /// Add one via occurrence at (via_layer, p).  Multiple occurrences (e.g.
  /// two congested nets with coincident vias) are reference-counted; the
  /// location reads as occupied while any remain.  Out-of-range layers or
  /// points, count overflow and removal of an absent via throw
  /// sadp::FlowError in every build type (they indicate router bugs that
  /// would otherwise corrupt the occupancy silently in release builds).
  void add(int via_layer, grid::Point p);
  void remove(int via_layer, grid::Point p);

  [[nodiscard]] bool has(int via_layer, grid::Point p) const {
    return count_[slot(via_layer, p)] > 0;
  }

  /// Total number of distinct occupied via locations on a layer.
  [[nodiscard]] int occupied_count(int via_layer) const;

  /// All occupied via locations of a layer.
  [[nodiscard]] std::vector<grid::Point> locations(int via_layer) const;

  /// 9-bit via-occupancy mask of the window with lower-left `origin`.
  /// Cells outside the grid read as empty.
  [[nodiscard]] WindowMask window_mask(int via_layer, grid::Point origin) const;

  /// True when the window at `origin` currently holds an FVP.
  [[nodiscard]] bool window_is_fvp(int via_layer, grid::Point origin) const {
    return is_fvp(window_mask(via_layer, origin));
  }

  /// True when hypothetically adding a via at (via_layer, p) would make any
  /// 3x3 window containing p an FVP.  This is the "blocked via location"
  /// predicate: during TPL-violation-removal R&R such locations are excluded
  /// from rerouting, and the DVI heuristic refuses insertions that trip it.
  [[nodiscard]] bool would_create_fvp(int via_layer, grid::Point p) const;

  /// True when the vias currently in some window containing p form an FVP.
  [[nodiscard]] bool in_fvp(int via_layer, grid::Point p) const;

  /// Full scan for FVP windows on one layer (O(grid size)).
  [[nodiscard]] std::vector<FvpWindow> scan_fvps(int via_layer) const;

  /// Full scan over all layers.
  [[nodiscard]] std::vector<FvpWindow> scan_all_fvps() const;

  /// Number of existing vias within same-color pitch of location p
  /// (excluding a via at p itself).  This is the multiplier of the TPLC
  /// penalty gamma * (#coloring conflicts).
  [[nodiscard]] int conflict_count(int via_layer, grid::Point p) const;

  /// Occupied via locations within same-color pitch of p (the "coloring
  /// conflicts" of the paper), excluding p itself.
  [[nodiscard]] std::vector<grid::Point> conflicting_vias(int via_layer,
                                                          grid::Point p) const;

 private:
  void check_slot(int via_layer, grid::Point p, const char* op) const;

  [[nodiscard]] std::size_t slot(int via_layer, grid::Point p) const noexcept {
    return static_cast<std::size_t>(via_layer - 1) * width_ * height_ +
           static_cast<std::size_t>(p.y) * width_ + p.x;
  }

  int width_;
  int height_;
  int layers_;
  std::vector<std::uint8_t> count_;
};

}  // namespace sadp::via
