// The via-layer TPL decomposition graph (paper Sections II-D and III-D).
//
// Each via pattern is a vertex; an edge joins two vias of the same layer
// that lie within same-color via pitch (vias_conflict()).  TPL layout
// decomposition is 3-coloring of this graph.  The graph is built once after
// routing (maintaining it during routing is what the FVP machinery avoids).
#pragma once

#include <cstdint>
#include <vector>

#include "grid/geometry.hpp"
#include "via/via_db.hpp"

namespace sadp::via {

/// Adjacency-list graph over the vias of one or more via layers.
class DecompGraph {
 public:
  /// Build the decomposition graph of a single via layer.
  static DecompGraph build(const ViaDb& db, int via_layer);

  /// Build one graph spanning all via layers (layers are independent; the
  /// combined graph is simply their disjoint union, convenient for a single
  /// coloring call).
  static DecompGraph build_all_layers(const ViaDb& db);

  /// Build from an explicit list of same-layer via locations.
  static DecompGraph from_points(const std::vector<grid::Point>& points);

  /// Build from explicit (location, via layer) pairs; vertex i corresponds
  /// to input element i.  Locations must be unique per layer.
  static DecompGraph from_located(
      const std::vector<std::pair<grid::Point, int>>& located);

  [[nodiscard]] int num_vertices() const noexcept {
    return static_cast<int>(adj_.size());
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] const std::vector<int>& neighbors(int v) const { return adj_[v]; }
  [[nodiscard]] int degree(int v) const { return static_cast<int>(adj_[v].size()); }

  /// Via layer and location of vertex v.
  [[nodiscard]] int vertex_layer(int v) const { return layer_[v]; }
  [[nodiscard]] grid::Point vertex_point(int v) const { return point_[v]; }

  /// Connected components as vertex-index lists.
  [[nodiscard]] std::vector<std::vector<int>> components() const;

 private:
  void add_vertices_for_layer(const ViaDb& db, int via_layer);
  void add_vertices(const std::vector<grid::Point>& points, int via_layer);
  void connect_conflicts();

  std::vector<std::vector<int>> adj_;
  std::vector<grid::Point> point_;
  std::vector<int> layer_;
  std::size_t num_edges_ = 0;
};

}  // namespace sadp::via
